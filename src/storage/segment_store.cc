#include "storage/segment_store.h"

#include <algorithm>
#include <map>
#include <type_traits>

#include "common/hash.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "storage/column_cursor.h"

namespace fabric::storage {

namespace {

// Adds the fields/byte composition of `row`'s `columns` to `profile`
// without touching the rows field (same bucketing as ProfileRow).
void MeasureRowColumns(const Row& row, const std::vector<int>& columns,
                       DataProfile* profile) {
  for (int c : columns) {
    const Value& v = row[c];
    profile->fields += 1;
    double size = v.RawSize();
    profile->raw_bytes += size;
    if (!v.is_null() && v.type() == DataType::kVarchar) {
      profile->string_bytes += size;
    } else {
      profile->numeric_bytes += size;
    }
  }
}

// Walks the batches of `chunk` covering positions of `sel`, invoking
// fn(cursor, batch, first, last) with the [first, last) index range of
// `sel` inside the batch. Stops once the selection is exhausted, so
// trailing batches of the column are never decoded.
template <typename Fn>
Status ForEachBatchSlice(const ColumnChunk& chunk, const SelectionVector& sel,
                         Fn&& fn) {
  if (sel.empty()) return Status::OK();
  ColumnCursor cursor;
  FABRIC_RETURN_IF_ERROR(cursor.Open(&chunk));
  ColumnBatch batch;
  size_t i = 0;
  while (i < sel.size()) {
    FABRIC_ASSIGN_OR_RETURN(bool more, cursor.Next(&batch));
    if (!more) break;
    uint32_t end = batch.base + batch.length;
    size_t j = i;
    while (j < sel.size() && sel[j] < end) ++j;
    if (j > i) {
      FABRIC_RETURN_IF_ERROR(fn(cursor, batch, i, j));
    }
    i = j;
  }
  return Status::OK();
}

// All schema column indices (projection default).
std::vector<int> AllColumns(const Schema& schema) {
  std::vector<int> cols(schema.num_columns());
  for (int c = 0; c < schema.num_columns(); ++c) cols[c] = c;
  return cols;
}

// Total order on rows over `cols` (nulls first, then Value::Compare).
// Mixed non-numeric types cannot appear within one typed column, so the
// Compare error path collapses to "equal".
bool RowLessBy(const Row& a, const Row& b, const std::vector<int>& cols) {
  for (int c : cols) {
    const Value& va = a[c];
    const Value& vb = b[c];
    if (va.is_null() && vb.is_null()) continue;
    if (va.is_null()) return true;
    if (vb.is_null()) return false;
    Result<int> cmp = va.Compare(vb);
    int v = cmp.ok() ? cmp.value() : 0;
    if (v != 0) return v < 0;
  }
  return false;
}

// Content key of one full row for multiset matching (same sentinel
// scheme as the SQL layer's group keys: \x01 null, \x02 separator).
// Types are fixed per column, so display strings are unambiguous.
std::string RowContentKey(const Row& row) {
  std::string key;
  for (const Value& v : row) {
    if (v.is_null()) {
      key.push_back('\x01');
    } else {
      key.append(v.ToDisplayString());
    }
    key.push_back('\x02');
  }
  return key;
}

}  // namespace

Result<RosContainer> RosContainer::Create(
    const Schema& schema, const std::vector<Row>& rows, TxnId pending_txn,
    const std::vector<Encoding>* encodings) {
  RosContainer container;
  container.num_rows_ = static_cast<uint32_t>(rows.size());
  container.pending_txn_ = pending_txn;
  container.delete_marks_.resize(rows.size());
  container.min_values_.resize(schema.num_columns());
  container.max_values_.resize(schema.num_columns());

  for (const Row& row : rows) {
    FABRIC_RETURN_IF_ERROR(ValidateRow(schema, row));
    container.raw_bytes_ += RowRawSize(row);
  }

  std::vector<Value> column_values;
  column_values.reserve(rows.size());
  for (int c = 0; c < schema.num_columns(); ++c) {
    column_values.clear();
    Value min = Value::Null();
    Value max = Value::Null();
    for (const Row& row : rows) {
      const Value& v = row[c];
      column_values.push_back(v);
      if (v.is_null()) continue;
      if (min.is_null() || v.Compare(min).value() < 0) min = v;
      if (max.is_null() || v.Compare(max).value() > 0) max = v;
    }
    ColumnChunk chunk;
    if (encodings != nullptr && c < static_cast<int>(encodings->size())) {
      FABRIC_ASSIGN_OR_RETURN(
          chunk, EncodeColumnAs(schema.column(c).type, (*encodings)[c],
                                column_values));
    } else {
      FABRIC_ASSIGN_OR_RETURN(
          chunk, EncodeColumn(schema.column(c).type, column_values));
    }
    container.columns_.push_back(std::move(chunk));
    container.min_values_[c] = std::move(min);
    container.max_values_[c] = std::move(max);
  }
  return container;
}

double RosContainer::encoded_bytes() const {
  double total = 0;
  for (const ColumnChunk& chunk : columns_) total += chunk.encoded_bytes();
  return total;
}

Result<std::vector<Row>> RosContainer::DecodeRows() const {
  std::vector<Row> rows(num_rows_);
  for (auto& row : rows) row.reserve(columns_.size());
  for (const ColumnChunk& chunk : columns_) {
    FABRIC_ASSIGN_OR_RETURN(std::vector<Value> values, DecodeColumn(chunk));
    FABRIC_CHECK(values.size() == num_rows_);
    for (uint32_t i = 0; i < num_rows_; ++i) {
      rows[i].push_back(std::move(values[i]));
    }
  }
  return rows;
}

void RosContainer::AdoptRowEpochs(std::vector<Epoch> epochs) {
  FABRIC_CHECK(epochs.size() == num_rows_)
      << "row epoch vector must cover every row";
  pending_txn_ = 0;
  if (epochs.empty()) {
    commit_epoch_ = 0;
    min_epoch_ = 0;
    row_epochs_.clear();
    return;
  }
  Epoch lo = epochs.front();
  Epoch hi = epochs.front();
  for (Epoch e : epochs) {
    lo = std::min(lo, e);
    hi = std::max(hi, e);
  }
  commit_epoch_ = hi;
  min_epoch_ = lo;
  if (lo == hi) {
    row_epochs_.clear();  // uniform: the scalar epoch suffices
  } else {
    row_epochs_ = std::move(epochs);
  }
}

bool VersionVisible(TxnId owner_txn, Epoch commit_epoch,
                    const DeleteMark& mark, Epoch as_of, TxnId txn) {
  // Insert visibility.
  if (owner_txn != 0) {
    if (owner_txn != txn) return false;  // someone else's pending insert
  } else if (commit_epoch > as_of) {
    return false;  // committed after the snapshot
  }
  // Delete visibility.
  switch (mark.state) {
    case DeleteMark::State::kNone:
      return true;
    case DeleteMark::State::kPending:
      return mark.txn != txn;  // own pending delete hides the row
    case DeleteMark::State::kCommitted:
      return mark.epoch > as_of;  // deleted after the snapshot => visible
  }
  return true;
}

Status SegmentStore::InsertPending(TxnId txn, std::vector<Row> rows) {
  FABRIC_CHECK(txn != 0) << "InsertPending requires a transaction";
  for (const Row& row : rows) {
    FABRIC_RETURN_IF_ERROR(ValidateRow(schema_, row));
  }
  for (Row& row : rows) CoerceRow(schema_, &row);
  WosBatch batch;
  batch.pending_txn = txn;
  batch.delete_marks.resize(rows.size());
  batch.rows = std::move(rows);
  wos_.push_back(std::move(batch));
  return Status::OK();
}

void SegmentStore::SortForDesign(std::vector<Row>* rows,
                                 std::vector<DeleteMark>* marks,
                                 std::vector<Epoch>* epochs) const {
  if (!design_.sorted() || rows->size() < 2) return;
  std::vector<uint32_t> order(rows->size());
  for (uint32_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    return RowLessBy((*rows)[a], (*rows)[b], design_.sort_columns);
  });
  auto permute = [&order](auto* vec) {
    if (vec == nullptr || vec->empty()) return;
    std::remove_reference_t<decltype(*vec)> out;
    out.reserve(vec->size());
    for (uint32_t i : order) out.push_back(std::move((*vec)[i]));
    *vec = std::move(out);
  };
  permute(rows);
  permute(marks);
  permute(epochs);
}

Result<RosContainer> SegmentStore::CreateContainer(
    const std::vector<Row>& rows, TxnId pending_txn) const {
  return RosContainer::Create(
      schema_, rows, pending_txn,
      design_.encodings.empty() ? nullptr : &design_.encodings);
}

Status SegmentStore::InsertPendingDirect(TxnId txn, std::vector<Row> rows) {
  FABRIC_CHECK(txn != 0) << "InsertPendingDirect requires a transaction";
  for (Row& row : rows) CoerceRow(schema_, &row);
  SortForDesign(&rows, nullptr, nullptr);
  FABRIC_ASSIGN_OR_RETURN(RosContainer container,
                          CreateContainer(rows, txn));
  ros_.push_back(std::move(container));
  return Status::OK();
}

Result<int64_t> SegmentStore::DeletePending(
    TxnId txn, Epoch as_of, const std::function<bool(const Row&)>& pred) {
  FABRIC_CHECK(txn != 0) << "DeletePending requires a transaction";
  int64_t marked = 0;
  for (RosContainer& container : ros_) {
    if (!container.committed() && container.pending_txn() != txn) continue;
    FABRIC_ASSIGN_OR_RETURN(std::vector<Row> rows, container.DecodeRows());
    auto& marks = container.mutable_delete_marks();
    for (uint32_t i = 0; i < rows.size(); ++i) {
      if (!VersionVisible(container.committed() ? 0 : container.pending_txn(),
                          container.row_epoch(i), marks[i], as_of, txn)) {
        continue;
      }
      if (!pred(rows[i])) continue;
      marks[i] = DeleteMark{DeleteMark::State::kPending, 0, txn};
      ++marked;
    }
  }
  for (WosBatch& batch : wos_) {
    if (!batch.committed() && batch.pending_txn != txn) continue;
    for (size_t i = 0; i < batch.rows.size(); ++i) {
      if (!VersionVisible(batch.committed() ? 0 : batch.pending_txn,
                          batch.commit_epoch, batch.delete_marks[i], as_of,
                          txn)) {
        continue;
      }
      if (!pred(batch.rows[i])) continue;
      batch.delete_marks[i] = DeleteMark{DeleteMark::State::kPending, 0, txn};
      ++marked;
    }
  }
  return marked;
}

void SegmentStore::CommitTxn(TxnId txn, Epoch epoch) {
  for (RosContainer& container : ros_) {
    if (!container.committed() && container.pending_txn() == txn) {
      container.MarkCommitted(epoch);
    }
    for (DeleteMark& mark : container.mutable_delete_marks()) {
      if (mark.state == DeleteMark::State::kPending && mark.txn == txn) {
        mark = DeleteMark{DeleteMark::State::kCommitted, epoch, 0};
      }
    }
  }
  for (WosBatch& batch : wos_) {
    if (!batch.committed() && batch.pending_txn == txn) {
      batch.pending_txn = 0;
      batch.commit_epoch = epoch;
    }
    for (DeleteMark& mark : batch.delete_marks) {
      if (mark.state == DeleteMark::State::kPending && mark.txn == txn) {
        mark = DeleteMark{DeleteMark::State::kCommitted, epoch, 0};
      }
    }
  }
}

void SegmentStore::AbortTxn(TxnId txn) {
  ros_.erase(std::remove_if(ros_.begin(), ros_.end(),
                            [txn](const RosContainer& c) {
                              return !c.committed() && c.pending_txn() == txn;
                            }),
             ros_.end());
  wos_.erase(std::remove_if(wos_.begin(), wos_.end(),
                            [txn](const WosBatch& b) {
                              return !b.committed() && b.pending_txn == txn;
                            }),
             wos_.end());
  auto clear_marks = [txn](std::vector<DeleteMark>& marks) {
    for (DeleteMark& mark : marks) {
      if (mark.state == DeleteMark::State::kPending && mark.txn == txn) {
        mark = DeleteMark{};
      }
    }
  };
  for (RosContainer& container : ros_) {
    clear_marks(container.mutable_delete_marks());
  }
  for (WosBatch& batch : wos_) clear_marks(batch.delete_marks);
}

Status SegmentStore::ScanVisible(
    Epoch as_of, TxnId txn,
    const std::function<Status(const Row&)>& fn) const {
  for (const RosContainer& container : ros_) {
    // Skip containers wholly invisible to the snapshot.
    if (!container.committed() && container.pending_txn() != txn) continue;
    if (container.committed() && container.min_epoch() > as_of) continue;
    FABRIC_ASSIGN_OR_RETURN(std::vector<Row> rows, container.DecodeRows());
    const auto& marks = container.delete_marks();
    for (uint32_t i = 0; i < rows.size(); ++i) {
      if (!VersionVisible(container.committed() ? 0 : container.pending_txn(),
                          container.row_epoch(i), marks[i], as_of, txn)) {
        continue;
      }
      FABRIC_RETURN_IF_ERROR(fn(rows[i]));
    }
  }
  for (const WosBatch& batch : wos_) {
    if (!batch.committed() && batch.pending_txn != txn) continue;
    if (batch.committed() && batch.commit_epoch > as_of) continue;
    for (size_t i = 0; i < batch.rows.size(); ++i) {
      if (!VersionVisible(batch.committed() ? 0 : batch.pending_txn,
                          batch.commit_epoch, batch.delete_marks[i], as_of,
                          txn)) {
        continue;
      }
      FABRIC_RETURN_IF_ERROR(fn(batch.rows[i]));
    }
  }
  return Status::OK();
}

Result<std::vector<Row>> SegmentStore::SnapshotRows(Epoch as_of,
                                                    TxnId txn) const {
  std::vector<Row> rows;
  FABRIC_RETURN_IF_ERROR(ScanVisible(as_of, txn, [&](const Row& row) {
    rows.push_back(row);
    return Status::OK();
  }));
  return rows;
}

Result<int64_t> SegmentStore::CountVisible(Epoch as_of, TxnId txn) const {
  // Visibility needs only delete marks and epochs — no column decode.
  int64_t count = 0;
  for (const RosContainer& container : ros_) {
    if (!container.committed() && container.pending_txn() != txn) continue;
    if (container.committed() && container.min_epoch() > as_of) continue;
    TxnId owner = container.committed() ? 0 : container.pending_txn();
    const auto& marks = container.delete_marks();
    for (uint32_t i = 0; i < marks.size(); ++i) {
      if (VersionVisible(owner, container.row_epoch(i), marks[i], as_of,
                         txn)) {
        ++count;
      }
    }
  }
  for (const WosBatch& batch : wos_) {
    if (!batch.committed() && batch.pending_txn != txn) continue;
    if (batch.committed() && batch.commit_epoch > as_of) continue;
    TxnId owner = batch.committed() ? 0 : batch.pending_txn;
    for (const DeleteMark& mark : batch.delete_marks) {
      if (VersionVisible(owner, batch.commit_epoch, mark, as_of, txn)) {
        ++count;
      }
    }
  }
  return count;
}

Result<std::vector<uint32_t>> SegmentStore::SelectRosRows(
    const RosContainer& container, const ScanSpec& spec, ScanStats* stats,
    std::vector<Row>* emit) const {
  SelectionVector sel;
  if (!container.committed() && container.pending_txn() != spec.txn) {
    return sel;
  }
  if (container.committed() && container.min_epoch() > spec.as_of) {
    ++stats->containers_pruned_epoch;
    return sel;
  }

  // Row visibility from the delete marks alone.
  TxnId owner = container.committed() ? 0 : container.pending_txn();
  const auto& marks = container.delete_marks();
  sel.reserve(container.num_rows());
  for (uint32_t i = 0; i < container.num_rows(); ++i) {
    if (VersionVisible(owner, container.row_epoch(i), marks[i],
                       spec.as_of, spec.txn)) {
      sel.push_back(i);
    }
  }
  stats->rows_visible += static_cast<int64_t>(sel.size());

  // Cost accounting happens before any pruning: the virtual-time model
  // charges the predicate columns for every visible row whether or not
  // the container can produce matches (the row-at-a-time path evaluated
  // the predicate on each of them).
  if (spec.cost_columns != nullptr) {
    for (int c : *spec.cost_columns) {
      FABRIC_RETURN_IF_ERROR(ForEachBatchSlice(
          container.column(c), sel,
          [&](const ColumnCursor& cursor, const ColumnBatch& batch,
              size_t first, size_t last) {
            SelectionVector sub(sel.begin() + first, sel.begin() + last);
            MeasureColumn(cursor, batch, sub, &stats->visible_profile);
            return Status::OK();
          }));
    }
  }
  if (sel.empty()) return sel;

  if (spec.predicate != nullptr) {
    const ScanPredicate& pred = *spec.predicate;
    if (pred.always_false) {
      sel.clear();
      return sel;
    }
    // Min/max pruning: skip the whole container before touching any
    // column payload when no value in range can pass a compare term.
    for (const CompareTerm& term : pred.compares) {
      if (!CompareTermCanMatch(term, container.min_value(term.column),
                               container.max_value(term.column))) {
        ++stats->containers_pruned_minmax;
        sel.clear();
        return sel;
      }
    }
    ++stats->containers_scanned;
    // Comparison kernels on the encoded columns, most selective first
    // would be ideal; we run them in analyzer order.
    for (const CompareTerm& term : pred.compares) {
      if (sel.empty()) return sel;
      SelectionVector refined;
      refined.reserve(sel.size());
      FABRIC_RETURN_IF_ERROR(ForEachBatchSlice(
          container.column(term.column), sel,
          [&](const ColumnCursor& cursor, const ColumnBatch& batch,
              size_t first, size_t last) {
            SelectionVector sub(sel.begin() + first, sel.begin() + last);
            FilterCompare(term, cursor, batch, &sub);
            refined.insert(refined.end(), sub.begin(), sub.end());
            return Status::OK();
          }));
      sel.swap(refined);
    }
    // NULL tests need only the bitmap prefix.
    for (const NullTestTerm& term : pred.null_tests) {
      if (sel.empty()) return sel;
      FABRIC_ASSIGN_OR_RETURN(
          std::vector<uint8_t> nulls,
          DecodeNullFlags(container.column(term.column)));
      FilterNullTest(term, nulls.data(), &sel);
    }
    // Hash-range terms: combine per-column hashes for the surviving
    // rows, then apply the ring bounds.
    for (const HashRangeTerm& term : pred.hash_ranges) {
      if (sel.empty()) return sel;
      std::vector<uint64_t> acc(sel.size(), kSegmentationHashSeed);
      for (int c : term.columns) {
        FABRIC_RETURN_IF_ERROR(ForEachBatchSlice(
            container.column(c), sel,
            [&](const ColumnCursor& cursor, const ColumnBatch& batch,
                size_t first, size_t last) {
              SelectionVector sub(sel.begin() + first, sel.begin() + last);
              std::vector<uint64_t> sub_acc(acc.begin() + first,
                                            acc.begin() + last);
              AccumulateHash(cursor, batch, sub, &sub_acc);
              std::copy(sub_acc.begin(), sub_acc.end(),
                        acc.begin() + first);
              return Status::OK();
            }));
      }
      FilterHashRange(term, &acc, &sel);
    }
  } else {
    ++stats->containers_scanned;
  }
  if (sel.empty()) return sel;

  // Residual predicate: materialize only the columns it reads, at the
  // selected positions, and interpret row-at-a-time.
  if (spec.residual) {
    std::vector<Row> scratch(
        sel.size(), Row(static_cast<size_t>(schema_.num_columns())));
    if (spec.residual_columns != nullptr) {
      for (int c : *spec.residual_columns) {
        FABRIC_RETURN_IF_ERROR(ForEachBatchSlice(
            container.column(c), sel,
            [&](const ColumnCursor& cursor, const ColumnBatch& batch,
                size_t first, size_t last) {
              SelectionVector sub(sel.begin() + first, sel.begin() + last);
              GatherColumn(cursor, batch, sub, c, &scratch, first);
              return Status::OK();
            }));
      }
    }
    bool handled = false;
    if (spec.batch_residual) {
      std::vector<uint32_t> keep;
      if (spec.batch_residual(scratch, &keep)) {
        SelectionVector kept;
        kept.reserve(keep.size());
        for (uint32_t k : keep) kept.push_back(sel[k]);
        sel.swap(kept);
        handled = true;
      }
    }
    if (!handled) {
      SelectionVector kept;
      kept.reserve(sel.size());
      for (size_t k = 0; k < sel.size(); ++k) {
        FABRIC_ASSIGN_OR_RETURN(bool keep, spec.residual(scratch[k]));
        if (keep) kept.push_back(sel[k]);
      }
      sel.swap(kept);
    }
  }
  if (sel.empty() || emit == nullptr) return sel;

  // Late materialization of the projection for the survivors.
  std::vector<int> all;
  const std::vector<int>* projection = spec.projection;
  if (projection == nullptr) {
    all = AllColumns(schema_);
    projection = &all;
  }
  size_t out_base = emit->size();
  emit->resize(out_base + sel.size(),
               Row(static_cast<size_t>(schema_.num_columns())));
  for (int c : *projection) {
    FABRIC_RETURN_IF_ERROR(ForEachBatchSlice(
        container.column(c), sel,
        [&](const ColumnCursor& cursor, const ColumnBatch& batch,
            size_t first, size_t last) {
          SelectionVector sub(sel.begin() + first, sel.begin() + last);
          MeasureColumn(cursor, batch, sub, &stats->output_profile);
          GatherColumn(cursor, batch, sub, c, emit, out_base + first);
          return Status::OK();
        }));
  }
  stats->rows_emitted += static_cast<int64_t>(sel.size());
  return sel;
}

Result<std::vector<Row>> SegmentStore::Scan(const ScanSpec& spec,
                                            ScanStats* stats) const {
  std::vector<Row> out;
  auto at_limit = [&] {
    return spec.limit >= 0 &&
           static_cast<int64_t>(out.size()) >= spec.limit;
  };
  for (const RosContainer& container : ros_) {
    if (at_limit()) break;
    FABRIC_RETURN_IF_ERROR(
        SelectRosRows(container, spec, stats, &out).status());
  }
  // WOS rows are uncompressed; filter them row-at-a-time.
  std::vector<int> all;
  const std::vector<int>* projection = spec.projection;
  if (projection == nullptr) {
    all = AllColumns(schema_);
    projection = &all;
  }
  for (const WosBatch& batch : wos_) {
    if (at_limit()) break;
    if (!batch.committed() && batch.pending_txn != spec.txn) continue;
    if (batch.committed() && batch.commit_epoch > spec.as_of) continue;
    TxnId owner = batch.committed() ? 0 : batch.pending_txn;
    for (size_t i = 0; i < batch.rows.size() && !at_limit(); ++i) {
      if (!VersionVisible(owner, batch.commit_epoch, batch.delete_marks[i],
                          spec.as_of, spec.txn)) {
        continue;
      }
      const Row& row = batch.rows[i];
      ++stats->rows_visible;
      if (spec.cost_columns != nullptr) {
        MeasureRowColumns(row, *spec.cost_columns, &stats->visible_profile);
      }
      if (spec.predicate != nullptr && !spec.predicate->Matches(row)) {
        continue;
      }
      if (spec.residual) {
        FABRIC_ASSIGN_OR_RETURN(bool keep, spec.residual(row));
        if (!keep) continue;
      }
      ++stats->rows_emitted;
      MeasureRowColumns(row, *projection, &stats->output_profile);
      Row masked(static_cast<size_t>(schema_.num_columns()));
      for (int c : *projection) masked[c] = row[c];
      out.push_back(std::move(masked));
    }
  }
  // A ROS container crossing the cap emits its full selection; trim the
  // overshoot so every caller sees exactly `limit` rows.
  if (spec.limit >= 0 && static_cast<int64_t>(out.size()) > spec.limit) {
    stats->rows_emitted -= static_cast<int64_t>(out.size()) - spec.limit;
    out.resize(static_cast<size_t>(spec.limit));
  }
  stats->visible_profile.rows = static_cast<double>(stats->rows_visible);
  stats->output_profile.rows = static_cast<double>(stats->rows_emitted);
  return out;
}

Result<int64_t> SegmentStore::MarkDeletedPending(const ScanSpec& spec,
                                                 std::vector<Row>* victims) {
  FABRIC_CHECK(spec.txn != 0) << "MarkDeletedPending requires a transaction";
  int64_t marked = 0;
  ScanStats ignored;
  for (RosContainer& container : ros_) {
    FABRIC_ASSIGN_OR_RETURN(
        std::vector<uint32_t> sel,
        SelectRosRows(container, spec, &ignored, victims));
    auto& marks = container.mutable_delete_marks();
    for (uint32_t pos : sel) {
      marks[pos] = DeleteMark{DeleteMark::State::kPending, 0, spec.txn};
      ++marked;
    }
  }
  for (WosBatch& batch : wos_) {
    if (!batch.committed() && batch.pending_txn != spec.txn) continue;
    if (batch.committed() && batch.commit_epoch > spec.as_of) continue;
    TxnId owner = batch.committed() ? 0 : batch.pending_txn;
    for (size_t i = 0; i < batch.rows.size(); ++i) {
      if (!VersionVisible(owner, batch.commit_epoch, batch.delete_marks[i],
                          spec.as_of, spec.txn)) {
        continue;
      }
      const Row& row = batch.rows[i];
      if (spec.predicate != nullptr && !spec.predicate->Matches(row)) {
        continue;
      }
      if (spec.residual) {
        FABRIC_ASSIGN_OR_RETURN(bool keep, spec.residual(row));
        if (!keep) continue;
      }
      batch.delete_marks[i] = DeleteMark{DeleteMark::State::kPending, 0,
                                         spec.txn};
      if (victims != nullptr) victims->push_back(row);
      ++marked;
    }
  }
  return marked;
}

Result<int64_t> SegmentStore::MarkDeletedPendingByContent(
    TxnId txn, Epoch as_of, const std::vector<Row>& victims) {
  FABRIC_CHECK(txn != 0)
      << "MarkDeletedPendingByContent requires a transaction";
  if (victims.empty()) return 0;
  std::map<std::string, int64_t> remaining;
  for (const Row& row : victims) ++remaining[RowContentKey(row)];
  int64_t marked = 0;
  auto try_mark = [&](const Row& row) {
    auto it = remaining.find(RowContentKey(row));
    if (it == remaining.end() || it->second == 0) return false;
    --it->second;
    ++marked;
    return true;
  };
  for (RosContainer& container : ros_) {
    if (marked == static_cast<int64_t>(victims.size())) break;
    if (!container.committed() && container.pending_txn() != txn) continue;
    if (container.committed() && container.min_epoch() > as_of) continue;
    TxnId owner = container.committed() ? 0 : container.pending_txn();
    FABRIC_ASSIGN_OR_RETURN(std::vector<Row> rows, container.DecodeRows());
    auto& marks = container.mutable_delete_marks();
    for (uint32_t i = 0; i < rows.size(); ++i) {
      if (!VersionVisible(owner, container.row_epoch(i), marks[i], as_of,
                          txn)) {
        continue;
      }
      if (try_mark(rows[i])) {
        marks[i] = DeleteMark{DeleteMark::State::kPending, 0, txn};
      }
    }
  }
  for (WosBatch& batch : wos_) {
    if (marked == static_cast<int64_t>(victims.size())) break;
    if (!batch.committed() && batch.pending_txn != txn) continue;
    if (batch.committed() && batch.commit_epoch > as_of) continue;
    TxnId owner = batch.committed() ? 0 : batch.pending_txn;
    for (size_t i = 0; i < batch.rows.size(); ++i) {
      if (!VersionVisible(owner, batch.commit_epoch, batch.delete_marks[i],
                          as_of, txn)) {
        continue;
      }
      if (try_mark(batch.rows[i])) {
        batch.delete_marks[i] =
            DeleteMark{DeleteMark::State::kPending, 0, txn};
      }
    }
  }
  return marked;
}

Status SegmentStore::Moveout() {
  // One ROS container absorbs every committed WOS batch; per-row commit
  // epochs keep AT EPOCH reads exact even though the batches committed at
  // different epochs. Delete marks move with their rows (including marks
  // still pending under an open transaction — CommitTxn/AbortTxn walk all
  // containers, so they resolve in their new home).
  std::vector<WosBatch> kept;
  std::vector<Row> rows;
  std::vector<DeleteMark> marks;
  std::vector<Epoch> epochs;
  for (WosBatch& batch : wos_) {
    if (!batch.committed()) {
      kept.push_back(std::move(batch));
      continue;
    }
    for (size_t i = 0; i < batch.rows.size(); ++i) {
      rows.push_back(std::move(batch.rows[i]));
      marks.push_back(batch.delete_marks[i]);
      epochs.push_back(batch.commit_epoch);
    }
  }
  if (rows.empty() && kept.size() == wos_.size()) return Status::OK();
  wos_.swap(kept);
  if (rows.empty()) return Status::OK();
  SortForDesign(&rows, &marks, &epochs);
  // Temporary txn id 1 satisfies Create's pending contract; AdoptRowEpochs
  // commits the container at the original per-row epochs.
  FABRIC_ASSIGN_OR_RETURN(RosContainer container,
                          CreateContainer(rows, /*txn=*/1));
  container.AdoptRowEpochs(std::move(epochs));
  container.mutable_delete_marks() = std::move(marks);
  ros_.push_back(std::move(container));
  return Status::OK();
}

Result<double> SegmentStore::MergeRosContainers(
    const std::vector<int>& indices) {
  if (indices.size() < 2) return 0.0;  // nothing to merge
  std::vector<int> sorted = indices;
  std::sort(sorted.begin(), sorted.end());
  for (size_t k = 0; k < sorted.size(); ++k) {
    int idx = sorted[k];
    if (idx < 0 || idx >= static_cast<int>(ros_.size())) {
      return InvalidArgumentError(
          StrCat("mergeout index ", idx, " out of range"));
    }
    if (k > 0 && sorted[k - 1] == idx) {
      return InvalidArgumentError(StrCat("duplicate mergeout index ", idx));
    }
    if (!ros_[idx].committed()) {
      return FailedPreconditionError(
          StrCat("mergeout of uncommitted container ", idx));
    }
  }
  std::vector<Row> rows;
  std::vector<DeleteMark> marks;
  std::vector<Epoch> epochs;
  double bytes = 0;
  for (int idx : sorted) {
    const RosContainer& c = ros_[idx];
    FABRIC_ASSIGN_OR_RETURN(std::vector<Row> decoded, c.DecodeRows());
    bytes += c.raw_bytes();
    for (uint32_t i = 0; i < c.num_rows(); ++i) {
      rows.push_back(std::move(decoded[i]));
      marks.push_back(c.delete_marks()[i]);
      epochs.push_back(c.row_epoch(i));
    }
  }
  SortForDesign(&rows, &marks, &epochs);
  FABRIC_ASSIGN_OR_RETURN(RosContainer merged,
                          CreateContainer(rows, /*txn=*/1));
  merged.AdoptRowEpochs(std::move(epochs));
  merged.mutable_delete_marks() = std::move(marks);
  int insert_at = sorted.front();
  for (auto it = sorted.rbegin(); it != sorted.rend(); ++it) {
    ros_.erase(ros_.begin() + *it);
  }
  ros_.insert(ros_.begin() + insert_at, std::move(merged));
  return bytes;
}

Result<int64_t> SegmentStore::PurgeDeletedRows(Epoch ahm) {
  int64_t purged = 0;
  auto purgeable = [ahm](const DeleteMark& mark) {
    return mark.state == DeleteMark::State::kCommitted && mark.epoch <= ahm;
  };
  for (size_t k = 0; k < ros_.size();) {
    RosContainer& c = ros_[k];
    bool any = false;
    if (c.committed()) {
      for (const DeleteMark& mark : c.delete_marks()) {
        if (purgeable(mark)) {
          any = true;
          break;
        }
      }
    }
    if (!any) {
      ++k;
      continue;
    }
    FABRIC_ASSIGN_OR_RETURN(std::vector<Row> decoded, c.DecodeRows());
    std::vector<Row> rows;
    std::vector<DeleteMark> marks;
    std::vector<Epoch> epochs;
    for (uint32_t i = 0; i < c.num_rows(); ++i) {
      if (purgeable(c.delete_marks()[i])) {
        ++purged;
        continue;
      }
      rows.push_back(std::move(decoded[i]));
      marks.push_back(c.delete_marks()[i]);
      epochs.push_back(c.row_epoch(i));
    }
    if (rows.empty()) {
      ros_.erase(ros_.begin() + static_cast<long>(k));
      continue;
    }
    // Dropping rows from a design-sorted container keeps it sorted, so no
    // re-sort is needed here.
    FABRIC_ASSIGN_OR_RETURN(RosContainer rebuilt,
                            CreateContainer(rows, /*txn=*/1));
    rebuilt.AdoptRowEpochs(std::move(epochs));
    rebuilt.mutable_delete_marks() = std::move(marks);
    ros_[k] = std::move(rebuilt);
    ++k;
  }
  for (WosBatch& batch : wos_) {
    if (!batch.committed()) continue;
    size_t out = 0;
    for (size_t i = 0; i < batch.rows.size(); ++i) {
      if (purgeable(batch.delete_marks[i])) {
        ++purged;
        continue;
      }
      if (out != i) {
        batch.rows[out] = std::move(batch.rows[i]);
        batch.delete_marks[out] = batch.delete_marks[i];
      }
      ++out;
    }
    batch.rows.resize(out);
    batch.delete_marks.resize(out);
  }
  wos_.erase(std::remove_if(wos_.begin(), wos_.end(),
                            [](const WosBatch& b) {
                              return b.committed() && b.rows.empty();
                            }),
             wos_.end());
  return purged;
}

double SegmentStore::TotalRawBytes() const {
  double total = 0;
  for (const RosContainer& c : ros_) total += c.raw_bytes();
  for (const WosBatch& b : wos_) {
    for (const Row& row : b.rows) total += RowRawSize(row);
  }
  return total;
}

double SegmentStore::TotalEncodedBytes() const {
  double total = 0;
  for (const RosContainer& c : ros_) total += c.encoded_bytes();
  for (const WosBatch& b : wos_) {
    for (const Row& row : b.rows) total += RowRawSize(row);
  }
  return total;
}

int SegmentStore::num_committed_wos_batches() const {
  int count = 0;
  for (const WosBatch& b : wos_) {
    if (b.committed()) ++count;
  }
  return count;
}

double SegmentStore::CommittedWosRawBytes() const {
  double total = 0;
  for (const WosBatch& b : wos_) {
    if (!b.committed()) continue;
    for (const Row& row : b.rows) total += RowRawSize(row);
  }
  return total;
}

std::vector<ContainerStats> SegmentStore::RosStats() const {
  std::vector<ContainerStats> stats;
  stats.reserve(ros_.size());
  for (const RosContainer& c : ros_) {
    ContainerStats s;
    s.committed = c.committed();
    s.pending_txn = c.pending_txn();
    s.min_epoch = c.min_epoch();
    s.max_epoch = c.commit_epoch();
    s.rows = static_cast<int64_t>(c.num_rows());
    for (const DeleteMark& mark : c.delete_marks()) {
      if (mark.state == DeleteMark::State::kCommitted) ++s.deleted_rows;
    }
    s.raw_bytes = c.raw_bytes();
    s.encoded_bytes = c.encoded_bytes();
    stats.push_back(s);
  }
  return stats;
}

double SegmentStore::RawBytesSince(Epoch epoch) const {
  double total = 0;
  for (const RosContainer& c : ros_) {
    if (!c.committed() || c.min_epoch() > epoch) {
      total += c.raw_bytes();
    } else if (c.commit_epoch() > epoch && c.num_rows() > 0) {
      // Mixed-epoch container (moveout/mergeout output): charge the
      // recovering node's pull proportionally to the rows it is missing.
      // This is a cost-model approximation only — the atomic clone at the
      // end of recovery copies full contents regardless.
      uint32_t newer = 0;
      for (uint32_t i = 0; i < c.num_rows(); ++i) {
        if (c.row_epoch(i) > epoch) ++newer;
      }
      total += c.raw_bytes() * static_cast<double>(newer) /
               static_cast<double>(c.num_rows());
    }
  }
  for (const WosBatch& b : wos_) {
    if (b.committed() && b.commit_epoch <= epoch) continue;
    for (const Row& row : b.rows) total += RowRawSize(row);
  }
  return total;
}

namespace {

uint64_t FoldMark(uint64_t h, const DeleteMark& mark) {
  h = HashCombine(h, static_cast<uint64_t>(mark.state));
  h = HashCombine(h, mark.epoch);
  return HashCombine(h, mark.txn);
}

uint64_t FoldRow(uint64_t h, const Row& row) {
  for (const Value& v : row) {
    h = HashCombine(h, v.is_null() ? 0x9e3779b97f4a7c15ULL
                                   : HashBytes(v.ToDisplayString()));
  }
  return h;
}

}  // namespace

uint64_t SegmentStore::ContentFingerprint() const {
  // Buddy copies of one segment hold the same logical content in
  // legitimately different physical layouts: WOS batches land in
  // transfer-completion order and ROS container boundaries depend on
  // moveout timing. The checksum therefore folds per-row digests with a
  // commutative sum — it sees every row with its (commit epoch, owning
  // txn, deletion state) and nothing about layout.
  uint64_t total = 0;
  auto fold_one = [&](Epoch epoch, TxnId pending_txn, const Row& row,
                      const DeleteMark& mark) {
    uint64_t h = HashCombine(HashInt64(static_cast<int64_t>(epoch)),
                             pending_txn);
    total += FoldMark(FoldRow(h, row), mark);
  };
  for (const RosContainer& c : ros_) {
    Result<std::vector<Row>> rows = c.DecodeRows();
    FABRIC_CHECK(rows.ok()) << rows.status();
    for (size_t i = 0; i < rows->size(); ++i) {
      fold_one(c.row_epoch(static_cast<uint32_t>(i)), c.pending_txn(),
               (*rows)[i], c.delete_marks()[i]);
    }
  }
  for (const WosBatch& b : wos_) {
    for (size_t i = 0; i < b.rows.size(); ++i) {
      fold_one(b.commit_epoch, b.pending_txn, b.rows[i],
               b.delete_marks[i]);
    }
  }
  return total;
}

void SegmentStore::CopyContentsFrom(const SegmentStore& other) {
  ros_ = other.ros_;
  wos_ = other.wos_;
}

}  // namespace fabric::storage
