#include "storage/segment_store.h"

#include <algorithm>
#include <map>

#include "common/logging.h"
#include "common/string_util.h"

namespace fabric::storage {

Result<RosContainer> RosContainer::Create(const Schema& schema,
                                          const std::vector<Row>& rows,
                                          TxnId pending_txn) {
  RosContainer container;
  container.num_rows_ = static_cast<uint32_t>(rows.size());
  container.pending_txn_ = pending_txn;
  container.delete_marks_.resize(rows.size());
  container.min_values_.resize(schema.num_columns());
  container.max_values_.resize(schema.num_columns());

  for (const Row& row : rows) {
    FABRIC_RETURN_IF_ERROR(ValidateRow(schema, row));
    container.raw_bytes_ += RowRawSize(row);
  }

  std::vector<Value> column_values;
  column_values.reserve(rows.size());
  for (int c = 0; c < schema.num_columns(); ++c) {
    column_values.clear();
    Value min = Value::Null();
    Value max = Value::Null();
    for (const Row& row : rows) {
      const Value& v = row[c];
      column_values.push_back(v);
      if (v.is_null()) continue;
      if (min.is_null() || v.Compare(min).value() < 0) min = v;
      if (max.is_null() || v.Compare(max).value() > 0) max = v;
    }
    FABRIC_ASSIGN_OR_RETURN(
        ColumnChunk chunk,
        EncodeColumn(schema.column(c).type, column_values));
    container.columns_.push_back(std::move(chunk));
    container.min_values_[c] = std::move(min);
    container.max_values_[c] = std::move(max);
  }
  return container;
}

double RosContainer::encoded_bytes() const {
  double total = 0;
  for (const ColumnChunk& chunk : columns_) total += chunk.encoded_bytes();
  return total;
}

Result<std::vector<Row>> RosContainer::DecodeRows() const {
  std::vector<Row> rows(num_rows_);
  for (auto& row : rows) row.reserve(columns_.size());
  for (const ColumnChunk& chunk : columns_) {
    FABRIC_ASSIGN_OR_RETURN(std::vector<Value> values, DecodeColumn(chunk));
    FABRIC_CHECK(values.size() == num_rows_);
    for (uint32_t i = 0; i < num_rows_; ++i) {
      rows[i].push_back(std::move(values[i]));
    }
  }
  return rows;
}

bool VersionVisible(TxnId owner_txn, Epoch commit_epoch,
                    const DeleteMark& mark, Epoch as_of, TxnId txn) {
  // Insert visibility.
  if (owner_txn != 0) {
    if (owner_txn != txn) return false;  // someone else's pending insert
  } else if (commit_epoch > as_of) {
    return false;  // committed after the snapshot
  }
  // Delete visibility.
  switch (mark.state) {
    case DeleteMark::State::kNone:
      return true;
    case DeleteMark::State::kPending:
      return mark.txn != txn;  // own pending delete hides the row
    case DeleteMark::State::kCommitted:
      return mark.epoch > as_of;  // deleted after the snapshot => visible
  }
  return true;
}

Status SegmentStore::InsertPending(TxnId txn, std::vector<Row> rows) {
  FABRIC_CHECK(txn != 0) << "InsertPending requires a transaction";
  for (const Row& row : rows) {
    FABRIC_RETURN_IF_ERROR(ValidateRow(schema_, row));
  }
  for (Row& row : rows) CoerceRow(schema_, &row);
  WosBatch batch;
  batch.pending_txn = txn;
  batch.delete_marks.resize(rows.size());
  batch.rows = std::move(rows);
  wos_.push_back(std::move(batch));
  return Status::OK();
}

Status SegmentStore::InsertPendingDirect(TxnId txn,
                                         const std::vector<Row>& rows) {
  FABRIC_CHECK(txn != 0) << "InsertPendingDirect requires a transaction";
  std::vector<Row> coerced = rows;
  for (Row& row : coerced) CoerceRow(schema_, &row);
  FABRIC_ASSIGN_OR_RETURN(RosContainer container,
                          RosContainer::Create(schema_, coerced, txn));
  ros_.push_back(std::move(container));
  return Status::OK();
}

Result<int64_t> SegmentStore::DeletePending(
    TxnId txn, Epoch as_of, const std::function<bool(const Row&)>& pred) {
  FABRIC_CHECK(txn != 0) << "DeletePending requires a transaction";
  int64_t marked = 0;
  for (RosContainer& container : ros_) {
    if (!container.committed() && container.pending_txn() != txn) continue;
    FABRIC_ASSIGN_OR_RETURN(std::vector<Row> rows, container.DecodeRows());
    auto& marks = container.mutable_delete_marks();
    for (uint32_t i = 0; i < rows.size(); ++i) {
      if (!VersionVisible(container.committed() ? 0 : container.pending_txn(),
                          container.commit_epoch(), marks[i], as_of, txn)) {
        continue;
      }
      if (!pred(rows[i])) continue;
      marks[i] = DeleteMark{DeleteMark::State::kPending, 0, txn};
      ++marked;
    }
  }
  for (WosBatch& batch : wos_) {
    if (!batch.committed() && batch.pending_txn != txn) continue;
    for (size_t i = 0; i < batch.rows.size(); ++i) {
      if (!VersionVisible(batch.committed() ? 0 : batch.pending_txn,
                          batch.commit_epoch, batch.delete_marks[i], as_of,
                          txn)) {
        continue;
      }
      if (!pred(batch.rows[i])) continue;
      batch.delete_marks[i] = DeleteMark{DeleteMark::State::kPending, 0, txn};
      ++marked;
    }
  }
  return marked;
}

void SegmentStore::CommitTxn(TxnId txn, Epoch epoch) {
  for (RosContainer& container : ros_) {
    if (!container.committed() && container.pending_txn() == txn) {
      container.MarkCommitted(epoch);
    }
    for (DeleteMark& mark : container.mutable_delete_marks()) {
      if (mark.state == DeleteMark::State::kPending && mark.txn == txn) {
        mark = DeleteMark{DeleteMark::State::kCommitted, epoch, 0};
      }
    }
  }
  for (WosBatch& batch : wos_) {
    if (!batch.committed() && batch.pending_txn == txn) {
      batch.pending_txn = 0;
      batch.commit_epoch = epoch;
    }
    for (DeleteMark& mark : batch.delete_marks) {
      if (mark.state == DeleteMark::State::kPending && mark.txn == txn) {
        mark = DeleteMark{DeleteMark::State::kCommitted, epoch, 0};
      }
    }
  }
}

void SegmentStore::AbortTxn(TxnId txn) {
  ros_.erase(std::remove_if(ros_.begin(), ros_.end(),
                            [txn](const RosContainer& c) {
                              return !c.committed() && c.pending_txn() == txn;
                            }),
             ros_.end());
  wos_.erase(std::remove_if(wos_.begin(), wos_.end(),
                            [txn](const WosBatch& b) {
                              return !b.committed() && b.pending_txn == txn;
                            }),
             wos_.end());
  auto clear_marks = [txn](std::vector<DeleteMark>& marks) {
    for (DeleteMark& mark : marks) {
      if (mark.state == DeleteMark::State::kPending && mark.txn == txn) {
        mark = DeleteMark{};
      }
    }
  };
  for (RosContainer& container : ros_) {
    clear_marks(container.mutable_delete_marks());
  }
  for (WosBatch& batch : wos_) clear_marks(batch.delete_marks);
}

Status SegmentStore::ScanVisible(
    Epoch as_of, TxnId txn,
    const std::function<Status(const Row&)>& fn) const {
  for (const RosContainer& container : ros_) {
    // Skip containers wholly invisible to the snapshot.
    if (!container.committed() && container.pending_txn() != txn) continue;
    if (container.committed() && container.commit_epoch() > as_of) continue;
    FABRIC_ASSIGN_OR_RETURN(std::vector<Row> rows, container.DecodeRows());
    const auto& marks = container.delete_marks();
    for (uint32_t i = 0; i < rows.size(); ++i) {
      if (!VersionVisible(container.committed() ? 0 : container.pending_txn(),
                          container.commit_epoch(), marks[i], as_of, txn)) {
        continue;
      }
      FABRIC_RETURN_IF_ERROR(fn(rows[i]));
    }
  }
  for (const WosBatch& batch : wos_) {
    if (!batch.committed() && batch.pending_txn != txn) continue;
    if (batch.committed() && batch.commit_epoch > as_of) continue;
    for (size_t i = 0; i < batch.rows.size(); ++i) {
      if (!VersionVisible(batch.committed() ? 0 : batch.pending_txn,
                          batch.commit_epoch, batch.delete_marks[i], as_of,
                          txn)) {
        continue;
      }
      FABRIC_RETURN_IF_ERROR(fn(batch.rows[i]));
    }
  }
  return Status::OK();
}

Result<std::vector<Row>> SegmentStore::SnapshotRows(Epoch as_of,
                                                    TxnId txn) const {
  std::vector<Row> rows;
  FABRIC_RETURN_IF_ERROR(ScanVisible(as_of, txn, [&](const Row& row) {
    rows.push_back(row);
    return Status::OK();
  }));
  return rows;
}

Result<int64_t> SegmentStore::CountVisible(Epoch as_of, TxnId txn) const {
  int64_t count = 0;
  FABRIC_RETURN_IF_ERROR(ScanVisible(as_of, txn, [&](const Row&) {
    ++count;
    return Status::OK();
  }));
  return count;
}

Status SegmentStore::Moveout() {
  // Merging batches with distinct commit epochs into one container would
  // corrupt AT EPOCH reads, so moveout builds one ROS container per
  // distinct commit epoch present in the WOS. Delete marks move with
  // their rows.
  std::vector<WosBatch> kept;
  std::map<Epoch, std::pair<std::vector<Row>, std::vector<DeleteMark>>>
      by_epoch;
  for (WosBatch& batch : wos_) {
    if (!batch.committed()) {
      kept.push_back(std::move(batch));
      continue;
    }
    auto& [rows, marks] = by_epoch[batch.commit_epoch];
    for (size_t i = 0; i < batch.rows.size(); ++i) {
      rows.push_back(std::move(batch.rows[i]));
      marks.push_back(batch.delete_marks[i]);
    }
  }
  wos_.swap(kept);
  for (auto& [epoch, group] : by_epoch) {
    auto& [rows, marks] = group;
    // Temporary txn id 1 satisfies Create's pending contract; the
    // container is committed immediately at the original epoch.
    FABRIC_ASSIGN_OR_RETURN(RosContainer container,
                            RosContainer::Create(schema_, rows, /*txn=*/1));
    container.MarkCommitted(epoch);
    container.mutable_delete_marks() = std::move(marks);
    ros_.push_back(std::move(container));
  }
  return Status::OK();
}

double SegmentStore::TotalRawBytes() const {
  double total = 0;
  for (const RosContainer& c : ros_) total += c.raw_bytes();
  for (const WosBatch& b : wos_) {
    for (const Row& row : b.rows) total += RowRawSize(row);
  }
  return total;
}

double SegmentStore::TotalEncodedBytes() const {
  double total = 0;
  for (const RosContainer& c : ros_) total += c.encoded_bytes();
  for (const WosBatch& b : wos_) {
    for (const Row& row : b.rows) total += RowRawSize(row);
  }
  return total;
}

}  // namespace fabric::storage
