#ifndef FABRIC_STORAGE_SCHEMA_H_
#define FABRIC_STORAGE_SCHEMA_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "storage/value.h"

namespace fabric::storage {

struct ColumnDef {
  std::string name;
  DataType type;

  friend bool operator==(const ColumnDef& a, const ColumnDef& b) {
    return a.name == b.name && a.type == b.type;
  }
};

// Ordered list of named, typed columns. Shared by Vertica tables, Spark
// DataFrames and everything that moves rows between them.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<ColumnDef> columns)
      : columns_(std::move(columns)) {}

  int num_columns() const { return static_cast<int>(columns_.size()); }
  const ColumnDef& column(int i) const { return columns_[i]; }
  const std::vector<ColumnDef>& columns() const { return columns_; }

  // Index of `name` (case-insensitive, as SQL identifiers are), or
  // NOT_FOUND.
  Result<int> IndexOf(std::string_view name) const;
  bool Contains(std::string_view name) const;

  // Schema with only the given column indices, in that order.
  Schema Project(const std::vector<int>& indices) const;

  // "a INTEGER, b FLOAT, c VARCHAR" (DDL body rendering).
  std::string ToDdlBody() const;

  friend bool operator==(const Schema& a, const Schema& b) {
    return a.columns_ == b.columns_;
  }

 private:
  std::vector<ColumnDef> columns_;
};

// A row is simply a vector of values matching some Schema positionally.
using Row = std::vector<Value>;

// Sum of the raw sizes of the row's values (cost-model data size).
double RowRawSize(const Row& row);

// Combined segmentation hash over the given column indices of `row`
// (order-sensitive, per Vertica's HASH(a, b, ...)).
uint64_t RowSegmentationHash(const Row& row,
                             const std::vector<int>& column_indices);

// True when the rows are structurally equal (null == null).
bool RowsEqual(const Row& a, const Row& b);

// Checks every value against the schema's column types (nulls always
// pass); INVALID_ARGUMENT with the offending column on mismatch.
Status ValidateRow(const Schema& schema, const Row& row);

// Normalizes a validated row to storage form: integer values destined for
// FLOAT columns widen to Float64 (SQL numeric coercion on load).
void CoerceRow(const Schema& schema, Row* row);

}  // namespace fabric::storage

#endif  // FABRIC_STORAGE_SCHEMA_H_
