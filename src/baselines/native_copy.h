#ifndef FABRIC_BASELINES_NATIVE_COPY_H_
#define FABRIC_BASELINES_NATIVE_COPY_H_

#include <vector>

#include "common/result.h"
#include "sim/engine.h"
#include "vertica/database.h"

namespace fabric::baselines {

// Vertica's native parallel bulk load (the Table 4 baseline): the input
// file is pre-split into parts placed on the nodes' local disks, and one
// COPY ... DIRECT runs per part, all in parallel. Returns the virtual
// makespan in seconds. `splits` holds the rows of each file part; part i
// is loaded through node i % num_nodes.
//
// Must be called from a driving process.
Result<double> RunParallelCopy(
    sim::Process& self, vertica::Database* db, const std::string& table,
    const std::vector<std::vector<storage::Row>>& splits);

}  // namespace fabric::baselines

#endif  // FABRIC_BASELINES_NATIVE_COPY_H_
