#include "baselines/two_stage.h"

#include "common/logging.h"
#include "common/string_util.h"
#include "storage/profile.h"
#include "vertica/copy_stream.h"
#include "vertica/session.h"

namespace fabric::baselines {

Result<TwoStageTiming> TwoStageSave(sim::Process& driver,
                                    spark::SparkSession* spark,
                                    hdfs::HdfsCluster* hdfs,
                                    vertica::Database* db,
                                    const spark::DataFrame& frame,
                                    const std::string& landing_path,
                                    const std::string& target_table) {
  TwoStageTiming timing;

  // ---- Stage 1: Spark writes the full DataFrame to the landing zone.
  double start = driver.Now();
  FABRIC_RETURN_IF_ERROR(frame.Write()
                             .Format("parquet")
                             .Option("path", landing_path)
                             .Mode(spark::SaveMode::kOverwrite)
                             .Save(driver));
  timing.stage1_write = driver.Now() - start;

  // ---- Stage 2: Vertica loads the staged files. One bracketing
  // transaction (the BEGIN ... END the Redshift connector issues); each
  // file part is pulled from its datanode over the external network into
  // a Vertica node, round-robin.
  start = driver.Now();
  if (!db->catalog().HasTable(target_table)) {
    FABRIC_ASSIGN_OR_RETURN(std::unique_ptr<vertica::Session> ddl,
                            db->Connect(driver, 0, nullptr));
    FABRIC_RETURN_IF_ERROR(
        ddl->Execute(driver, StrCat("CREATE TABLE ", target_table, " (",
                                    frame.schema().ToDdlBody(), ")"))
            .status());
    FABRIC_RETURN_IF_ERROR(ddl->Close(driver));
  }

  // Collect the staged part files.
  std::vector<std::string> parts;
  for (int p = 0;; ++p) {
    std::string part = StrCat(landing_path, "/part-", p);
    if (!hdfs->Exists(part)) break;
    parts.push_back(part);
  }
  if (parts.empty()) {
    return NotFoundError(
        StrCat("no staged files under '", landing_path, "'"));
  }

  // Parallel loaders (several COPY streams per node, like the parallel
  // COPY baseline), each atomic per connection; the paper's 2-stage
  // approach brackets the whole sequence.
  int nodes = db->num_nodes();
  int loaders = std::min<int>(static_cast<int>(parts.size()), nodes * 8);
  auto statuses = std::make_shared<std::vector<Status>>(loaders,
                                                        Status::OK());
  sim::Latch done(db->engine(), loaders);
  for (int l = 0; l < loaders; ++l) {
    int n = l % nodes;
    std::vector<std::string> my_parts;
    for (size_t i = l; i < parts.size(); i += loaders) {
      my_parts.push_back(parts[i]);
    }
    db->engine()->Spawn(
        StrCat("twostage-load-", l),
        [db, hdfs, n, l, my_parts, target_table, statuses,
         &done](sim::Process& loader) {
          Status status = [&]() -> Status {
            FABRIC_ASSIGN_OR_RETURN(
                std::unique_ptr<vertica::Session> session,
                db->Connect(loader, n, nullptr));
            FABRIC_RETURN_IF_ERROR(
                session->Execute(loader, "BEGIN").status());
            FABRIC_ASSIGN_OR_RETURN(
                std::unique_ptr<vertica::CopyStream> stream,
                vertica::CopyStream::Open(loader, session.get(),
                                          target_table,
                                          vertica::CopyStream::Options{}));
            for (const std::string& part : my_parts) {
              FABRIC_ASSIGN_OR_RETURN(const hdfs::HdfsCluster::File* file,
                                      hdfs->GetFile(part));
              for (int b = 0;
                   b < static_cast<int>(file->blocks.size()); ++b) {
                // Pull the block from HDFS into the node...
                FABRIC_ASSIGN_OR_RETURN(
                    std::vector<storage::Row> rows,
                    hdfs->ReadBlock(loader, part, b,
                                    db->node_host(n)));
                // ...and feed it into the bulk-load path.
                FABRIC_RETURN_IF_ERROR(stream->WriteBatch(loader, rows));
              }
            }
            FABRIC_RETURN_IF_ERROR(stream->Finish(loader).status());
            return session->Execute(loader, "COMMIT").status();
          }();
          (*statuses)[l] = status;
          done.CountDown();
        });
  }
  FABRIC_RETURN_IF_ERROR(done.Await(driver));
  for (const Status& status : *statuses) {
    FABRIC_RETURN_IF_ERROR(status);
  }
  timing.stage2_load = driver.Now() - start;
  return timing;
}

}  // namespace fabric::baselines
