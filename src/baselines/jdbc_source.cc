#include "baselines/jdbc_source.h"

#include <algorithm>

#include "common/logging.h"
#include "common/string_util.h"
#include "storage/profile.h"
#include "vertica/session.h"

namespace fabric::baselines {

using spark::PushDown;
using spark::SourceOptions;
using spark::TaskContext;
using storage::Row;
using storage::Schema;
using vertica::QueryResult;
using vertica::Session;

namespace {

class JdbcScan : public spark::ScanRelation {
 public:
  JdbcScan(vertica::Database* db, spark::SparkCluster* cluster,
           std::string table, Schema schema, int entry_node,
           std::string partition_column, int64_t lower, int64_t upper,
           int partitions)
      : db_(db), cluster_(cluster), table_(std::move(table)),
        schema_(std::move(schema)), entry_node_(entry_node),
        partition_column_(std::move(partition_column)), lower_(lower),
        upper_(upper), partitions_(partitions) {}

  const Schema& schema() const override { return schema_; }
  int num_partitions() const override { return partitions_; }

  std::string PartitionQuery(int partition, const PushDown& push) const {
    std::string select_list;
    if (push.count_only) {
      select_list = "COUNT(*)";
    } else if (push.required_columns.empty()) {
      select_list = "*";
    } else {
      select_list = Join(push.required_columns, ", ");
    }
    std::string where;
    if (partitions_ > 1) {
      // Spark's JDBC stride logic: equal strides over [lower, upper);
      // the first/last partitions are open-ended so the whole table is
      // covered even outside the user-provided bounds.
      int64_t stride = (upper_ - lower_) / partitions_;
      if (stride <= 0) stride = 1;
      int64_t begin = lower_ + stride * partition;
      int64_t end = begin + stride;
      if (partition == 0) {
        where = StrCat(partition_column_, " < ", end);
      } else if (partition == partitions_ - 1) {
        where = StrCat(partition_column_, " >= ", begin);
      } else {
        where = StrCat(partition_column_, " >= ", begin, " AND ",
                       partition_column_, " < ", end);
      }
    }
    for (const spark::ColumnPredicate& filter : push.filters) {
      if (!where.empty()) where += " AND ";
      where += filter.ToSqlCondition();
    }
    std::string sql = StrCat("SELECT ", select_list, " FROM ", table_);
    if (!where.empty()) sql += StrCat(" WHERE ", where);
    return sql;  // note: no AT EPOCH — only best-effort consistency
  }

  Result<PartitionData> ReadPartition(TaskContext& task, int partition,
                                      const PushDown& push) override {
    // Every partition connects to the one configured host.
    FABRIC_ASSIGN_OR_RETURN(
        std::unique_ptr<Session> session,
        db_->Connect(*task.process, entry_node_, &task.worker_host()));
    FABRIC_ASSIGN_OR_RETURN(
        QueryResult result,
        session->Execute(*task.process, PartitionQuery(partition, push)));
    FABRIC_RETURN_IF_ERROR(session->Close(*task.process));
    PartitionData data;
    if (push.count_only) {
      data.count = result.rows[0][0].int64_value();
      return data;
    }
    const CostModel& cost = cluster_->cost();
    FABRIC_RETURN_IF_ERROR(task.Compute(result.rows.size() *
                                        cost.spark_row_process_cpu *
                                        cost.data_scale));
    data.count = static_cast<int64_t>(result.rows.size());
    data.rows = std::move(result.rows);
    return data;
  }

 private:
  vertica::Database* db_;
  spark::SparkCluster* cluster_;
  std::string table_;
  Schema schema_;
  int entry_node_;
  std::string partition_column_;
  int64_t lower_;
  int64_t upper_;
  int partitions_;
};

class JdbcWrite : public spark::WriteRelation {
 public:
  JdbcWrite(vertica::Database* db, spark::SparkCluster* cluster,
            std::string table, Schema schema, int entry_node,
            spark::SaveMode mode, int batch_rows)
      : db_(db), cluster_(cluster), table_(std::move(table)),
        schema_(std::move(schema)), entry_node_(entry_node), mode_(mode),
        batch_rows_(batch_rows) {}

  Status Setup(sim::Process& driver, int) override {
    FABRIC_ASSIGN_OR_RETURN(
        std::unique_ptr<Session> session,
        db_->Connect(driver, entry_node_, &cluster_->driver_host()));
    bool exists = db_->catalog().HasTable(table_);
    if (mode_ == spark::SaveMode::kErrorIfExists && exists) {
      return AlreadyExistsError(StrCat("table '", table_, "' exists"));
    }
    if (mode_ == spark::SaveMode::kOverwrite && exists) {
      FABRIC_RETURN_IF_ERROR(
          session->Execute(driver, StrCat("DROP TABLE ", table_))
              .status());
      exists = false;
    }
    if (!exists) {
      FABRIC_RETURN_IF_ERROR(
          session->Execute(driver, StrCat("CREATE TABLE ", table_, " (",
                                          schema_.ToDdlBody(), ")"))
              .status());
    }
    return session->Close(driver);
  }

  Status WriteTaskPartition(TaskContext& task, int partition,
                            const std::vector<Row>& rows) override {
    (void)partition;
    sim::Process& self = *task.process;
    FABRIC_ASSIGN_OR_RETURN(
        std::unique_ptr<Session> session,
        db_->Connect(self, entry_node_, &task.worker_host()));
    // Batched INSERT statements under one per-partition transaction —
    // but with no cross-task coordination, so a failed job can leave the
    // table partially or doubly loaded (the contrast with S2V).
    FABRIC_RETURN_IF_ERROR(session->Execute(self, "BEGIN").status());
    for (size_t begin = 0; begin < rows.size();
         begin += static_cast<size_t>(batch_rows_)) {
      size_t end =
          std::min(rows.size(), begin + static_cast<size_t>(batch_rows_));
      std::string values;
      for (size_t i = begin; i < end; ++i) {
        if (i > begin) values += ", ";
        values += "(";
        for (size_t c = 0; c < rows[i].size(); ++c) {
          if (c > 0) values += ", ";
          values += rows[i][c].ToSqlLiteral();
        }
        values += ")";
      }
      FABRIC_RETURN_IF_ERROR(
          session->Execute(self, StrCat("INSERT INTO ", table_, " VALUES ",
                                        values))
              .status());
    }
    FABRIC_RETURN_IF_ERROR(session->Execute(self, "COMMIT").status());
    return session->Close(self);
  }

  Status Finalize(sim::Process&, Status job_status) override {
    return job_status;
  }

 private:
  vertica::Database* db_;
  spark::SparkCluster* cluster_;
  std::string table_;
  Schema schema_;
  int entry_node_;
  spark::SaveMode mode_;
  int batch_rows_;
};

}  // namespace

Result<std::shared_ptr<spark::ScanRelation>> JdbcDefaultSource::CreateScan(
    sim::Process& driver, const SourceOptions& options) {
  (void)driver;
  FABRIC_ASSIGN_OR_RETURN(std::string table, options.Get("dbtable"));
  FABRIC_ASSIGN_OR_RETURN(const vertica::TableDef* def,
                          db_->catalog().GetTable(table));
  int entry_node = 0;
  if (options.Has("host")) {
    FABRIC_ASSIGN_OR_RETURN(std::string host, options.Get("host"));
    FABRIC_ASSIGN_OR_RETURN(entry_node, db_->ResolveNode(host));
  }
  // Parallelism only with the integer partition column + bounds.
  std::string partition_column = options.GetOr("partitioncolumn", "");
  int partitions = 1;
  int64_t lower = 0, upper = 0;
  if (!partition_column.empty()) {
    FABRIC_ASSIGN_OR_RETURN(int col_idx,
                            def->schema.IndexOf(partition_column));
    if (def->schema.column(col_idx).type != storage::DataType::kInt64) {
      return InvalidArgumentError(
          "partitioncolumn must be an INTEGER column");
    }
    FABRIC_ASSIGN_OR_RETURN(lower, options.GetInt("lowerbound"));
    FABRIC_ASSIGN_OR_RETURN(upper, options.GetInt("upperbound"));
    partitions =
        static_cast<int>(options.GetIntOr("numpartitions", 1));
    if (partitions <= 0) partitions = 1;
  }
  return std::shared_ptr<spark::ScanRelation>(std::make_shared<JdbcScan>(
      db_, cluster_, table, def->schema, entry_node, partition_column,
      lower, upper, partitions));
}

Result<std::shared_ptr<spark::WriteRelation>>
JdbcDefaultSource::CreateWrite(sim::Process& driver,
                               const SourceOptions& options,
                               spark::SaveMode mode,
                               const storage::Schema& schema) {
  (void)driver;
  FABRIC_ASSIGN_OR_RETURN(std::string table, options.Get("dbtable"));
  int entry_node = 0;
  if (options.Has("host")) {
    FABRIC_ASSIGN_OR_RETURN(std::string host, options.Get("host"));
    FABRIC_ASSIGN_OR_RETURN(entry_node, db_->ResolveNode(host));
  }
  int batch_rows = static_cast<int>(options.GetIntOr("batchsize", 1000));
  return std::shared_ptr<spark::WriteRelation>(std::make_shared<JdbcWrite>(
      db_, cluster_, table, schema, entry_node, mode, batch_rows));
}

void RegisterJdbcSource(spark::SparkSession* session,
                        vertica::Database* db) {
  session->RegisterFormat(
      kJdbcSourceName,
      std::make_shared<JdbcDefaultSource>(db, session->cluster()));
}

}  // namespace fabric::baselines
