#ifndef FABRIC_BASELINES_TWO_STAGE_H_
#define FABRIC_BASELINES_TWO_STAGE_H_

#include <string>

#include "common/result.h"
#include "hdfs/hdfs.h"
#include "spark/dataframe.h"
#include "vertica/database.h"

namespace fabric::baselines {

// The two-stage save the paper contrasts with S2V (Section 5, and the
// Spark-Redshift connector of Section 6): stage 1 writes the whole
// DataFrame to an intermediate landing zone (HDFS here, S3 for
// Redshift); stage 2 bulk-loads the staged files into Vertica under one
// bracketing transaction, each load pulling its file across the
// network. Exactly-once comes from the staging hand-off, at the price of
// an extra full copy of the data — the trade-off the paper discusses.
//
// Returns the virtual seconds for (stage1, stage2).
struct TwoStageTiming {
  double stage1_write = 0;
  double stage2_load = 0;
  double total() const { return stage1_write + stage2_load; }
};

Result<TwoStageTiming> TwoStageSave(sim::Process& driver,
                                    spark::SparkSession* spark,
                                    hdfs::HdfsCluster* hdfs,
                                    vertica::Database* db,
                                    const spark::DataFrame& frame,
                                    const std::string& landing_path,
                                    const std::string& target_table);

}  // namespace fabric::baselines

#endif  // FABRIC_BASELINES_TWO_STAGE_H_
