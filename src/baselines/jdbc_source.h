#ifndef FABRIC_BASELINES_JDBC_SOURCE_H_
#define FABRIC_BASELINES_JDBC_SOURCE_H_

#include <memory>
#include <string>

#include "spark/dataframe.h"
#include "spark/datasource.h"
#include "vertica/database.h"

namespace fabric::baselines {

inline constexpr const char* kJdbcSourceName = "jdbc";

// Spark's generic JDBC DefaultSource (the Section 4.7.1 baseline), with
// its documented limitations reproduced:
//
//  * load() parallelism requires an INTEGER `partitioncolumn` plus user-
//    supplied `lowerbound`/`upperbound`; otherwise a single partition.
//  * every connection goes through the single `host` given in options —
//    one Vertica node serves (and internally shuffles) everything.
//  * no epoch snapshot: each partition query sees whatever is committed
//    when it happens to run (only "best-effort" consistency).
//  * save() issues batched INSERT statements; partitions commit
//    independently, so failures can leave partial or duplicated data.
class JdbcDefaultSource : public spark::DataSourceProvider {
 public:
  JdbcDefaultSource(vertica::Database* db, spark::SparkCluster* cluster)
      : db_(db), cluster_(cluster) {}

  Result<std::shared_ptr<spark::ScanRelation>> CreateScan(
      sim::Process& driver, const spark::SourceOptions& options) override;

  Result<std::shared_ptr<spark::WriteRelation>> CreateWrite(
      sim::Process& driver, const spark::SourceOptions& options,
      spark::SaveMode mode, const storage::Schema& schema) override;

 private:
  vertica::Database* db_;
  spark::SparkCluster* cluster_;
};

void RegisterJdbcSource(spark::SparkSession* session,
                        vertica::Database* db);

}  // namespace fabric::baselines

#endif  // FABRIC_BASELINES_JDBC_SOURCE_H_
