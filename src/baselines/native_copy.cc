#include "baselines/native_copy.h"

#include "common/logging.h"
#include "storage/profile.h"
#include "common/string_util.h"
#include "sim/waitable.h"
#include "vertica/copy_stream.h"
#include "vertica/session.h"

namespace fabric::baselines {

Result<double> RunParallelCopy(
    sim::Process& self, vertica::Database* db, const std::string& table,
    const std::vector<std::vector<storage::Row>>& splits) {
  double started = self.Now();
  auto statuses =
      std::make_shared<std::vector<Status>>(splits.size(), Status::OK());
  sim::Latch done(db->engine(), static_cast<int>(splits.size()));
  for (size_t i = 0; i < splits.size(); ++i) {
    const std::vector<storage::Row>* rows = &splits[i];
    int node = static_cast<int>(i) % db->num_nodes();
    db->engine()->Spawn(
        StrCat("copy-part", i),
        [db, rows, node, i, statuses, &done, table](sim::Process& loader) {
          Status status = [&]() -> Status {
            // A local vsql-style client on the node itself: no external
            // network hop, data comes off the node's data disk.
            FABRIC_ASSIGN_OR_RETURN(
                std::unique_ptr<vertica::Session> session,
                db->Connect(loader, node, nullptr));
            vertica::CopyStream::Options options;
            options.from_local_disk = true;
            FABRIC_ASSIGN_OR_RETURN(
                std::unique_ptr<vertica::CopyStream> stream,
                vertica::CopyStream::Open(loader, session.get(), table,
                                          options));
            // Stream the file in ~32 MB (cost-scale) buffers so disk
            // read, parse and segment routing pipeline.
            size_t batch = rows->size();
            if (!rows->empty()) {
              double scaled_row = storage::ProfileRows({rows->front()})
                                      .raw_bytes *
                                  db->cost().data_scale;
              if (scaled_row > 0) {
                batch = std::max<size_t>(
                    1, static_cast<size_t>(32e6 / scaled_row));
              }
            }
            for (size_t begin = 0; begin < rows->size(); begin += batch) {
              size_t end = std::min(rows->size(), begin + batch);
              std::vector<storage::Row> buffer(rows->begin() + begin,
                                               rows->begin() + end);
              FABRIC_RETURN_IF_ERROR(stream->WriteBatch(loader, buffer));
            }
            FABRIC_RETURN_IF_ERROR(stream->Finish(loader).status());
            return session->Close(loader);
          }();
          (*statuses)[i] = status;
          done.CountDown();
        });
  }
  FABRIC_RETURN_IF_ERROR(done.Await(self));
  for (const Status& status : *statuses) {
    FABRIC_RETURN_IF_ERROR(status);
  }
  return self.Now() - started;
}

}  // namespace fabric::baselines
