#include "mllib/mllib.h"

#include <cmath>

#include "common/logging.h"
#include "common/random.h"
#include "common/string_util.h"
#include "net/host.h"

namespace fabric::mllib {

using storage::Row;

namespace {

struct TrainingData {
  std::vector<std::vector<double>> features;  // n x d
  std::vector<double> labels;                 // n (empty for clustering)
};

// Materializes the DataFrame (a real Spark job with transfer costs) and
// extracts numeric matrices.
Result<TrainingData> Materialize(
    sim::Process& driver, const spark::DataFrame& data,
    const std::vector<std::string>& feature_columns,
    const std::string& label_column) {
  std::vector<int> feature_idx;
  for (const std::string& name : feature_columns) {
    FABRIC_ASSIGN_OR_RETURN(int idx, data.schema().IndexOf(name));
    feature_idx.push_back(idx);
  }
  int label_idx = -1;
  if (!label_column.empty()) {
    FABRIC_ASSIGN_OR_RETURN(label_idx, data.schema().IndexOf(label_column));
  }
  FABRIC_ASSIGN_OR_RETURN(std::vector<Row> rows, data.Collect(driver));
  if (rows.empty()) return InvalidArgumentError("no training rows");
  TrainingData out;
  for (const Row& row : rows) {
    std::vector<double> features;
    bool skip = false;
    for (int idx : feature_idx) {
      auto v = row[idx].AsDouble();
      if (!v.ok()) {
        skip = true;  // rows with NULL/non-numeric features are dropped
        break;
      }
      features.push_back(*v);
    }
    if (skip) continue;
    if (label_idx >= 0) {
      auto label = row[label_idx].AsDouble();
      if (!label.ok()) continue;
      out.labels.push_back(*label);
    }
    out.features.push_back(std::move(features));
  }
  if (out.features.empty()) {
    return InvalidArgumentError("no usable (fully numeric) training rows");
  }
  return out;
}

// Charges driver-side training CPU proportional to the work.
Status ChargeTraining(sim::Process& driver, const spark::DataFrame& data,
                      double flops) {
  spark::SparkCluster* cluster = data.session()->cluster();
  return net::RunCpu(driver, cluster->network(), cluster->driver_host(),
                     flops * 1e-9);
}

Result<RegressionModel> TrainGd(sim::Process& driver,
                                const spark::DataFrame& data,
                                const std::vector<std::string>& features,
                                const std::string& label,
                                const TrainConfig& config, bool logistic) {
  FABRIC_ASSIGN_OR_RETURN(TrainingData training,
                          Materialize(driver, data, features, label));
  size_t n = training.features.size();
  size_t d = features.size();
  FABRIC_RETURN_IF_ERROR(ChargeTraining(
      driver, data,
      static_cast<double>(config.iterations) * n * d * 4));

  RegressionModel model;
  model.feature_names = features;
  model.weights.assign(d, 0.0);
  model.logistic = logistic;
  for (int iteration = 0; iteration < config.iterations; ++iteration) {
    std::vector<double> gradient(d, 0.0);
    double intercept_gradient = 0;
    for (size_t i = 0; i < n; ++i) {
      double prediction = model.Predict(training.features[i]);
      double error = prediction - training.labels[i];
      for (size_t j = 0; j < d; ++j) {
        gradient[j] += error * training.features[i][j];
      }
      intercept_gradient += error;
    }
    double step = config.learning_rate / static_cast<double>(n);
    for (size_t j = 0; j < d; ++j) {
      model.weights[j] -= step * gradient[j];
    }
    model.intercept -= step * intercept_gradient;
  }
  return model;
}

}  // namespace

double RegressionModel::Predict(const std::vector<double>& features) const {
  double z = intercept;
  for (size_t i = 0; i < weights.size(); ++i) {
    z += weights[i] * features[i];
  }
  return logistic ? 1.0 / (1.0 + std::exp(-z)) : z;
}

pmml::PmmlModel RegressionModel::ToPmml(const std::string& name) const {
  pmml::PmmlModel model;
  model.kind = logistic ? pmml::PmmlModel::Kind::kLogisticRegression
                        : pmml::PmmlModel::Kind::kLinearRegression;
  model.name = name;
  model.feature_names = feature_names;
  model.coefficients = weights;
  model.intercept = intercept;
  return model;
}

int KMeansModel::PredictCluster(const std::vector<double>& features) const {
  int best = -1;
  double best_distance = 0;
  for (size_t c = 0; c < centers.size(); ++c) {
    double distance = 0;
    for (size_t i = 0; i < features.size(); ++i) {
      double diff = features[i] - centers[c][i];
      distance += diff * diff;
    }
    if (best < 0 || distance < best_distance) {
      best = static_cast<int>(c);
      best_distance = distance;
    }
  }
  return best;
}

pmml::PmmlModel KMeansModel::ToPmml(const std::string& name) const {
  pmml::PmmlModel model;
  model.kind = pmml::PmmlModel::Kind::kKMeans;
  model.name = name;
  model.feature_names = feature_names;
  model.centers = centers;
  return model;
}

Result<RegressionModel> TrainLinearRegression(
    sim::Process& driver, const spark::DataFrame& data,
    const std::vector<std::string>& feature_columns,
    const std::string& label_column, const TrainConfig& config) {
  return TrainGd(driver, data, feature_columns, label_column, config,
                 /*logistic=*/false);
}

Result<RegressionModel> TrainLogisticRegression(
    sim::Process& driver, const spark::DataFrame& data,
    const std::vector<std::string>& feature_columns,
    const std::string& label_column, const TrainConfig& config) {
  return TrainGd(driver, data, feature_columns, label_column, config,
                 /*logistic=*/true);
}

Result<KMeansModel> TrainKMeans(
    sim::Process& driver, const spark::DataFrame& data,
    const std::vector<std::string>& feature_columns, int k,
    const TrainConfig& config) {
  if (k <= 0) return InvalidArgumentError("k must be positive");
  FABRIC_ASSIGN_OR_RETURN(
      TrainingData training,
      Materialize(driver, data, feature_columns, /*label=*/""));
  size_t n = training.features.size();
  size_t d = feature_columns.size();
  if (static_cast<size_t>(k) > n) {
    return InvalidArgumentError("k exceeds the number of rows");
  }
  FABRIC_RETURN_IF_ERROR(ChargeTraining(
      driver, data,
      static_cast<double>(config.iterations) * n * d * k * 3));

  KMeansModel model;
  model.feature_names = feature_columns;
  // Initialize with k distinct random rows.
  Rng rng(config.seed);
  std::vector<size_t> chosen;
  while (chosen.size() < static_cast<size_t>(k)) {
    size_t candidate = rng.NextUint64(n);
    bool duplicate = false;
    for (size_t used : chosen) duplicate = duplicate || used == candidate;
    if (!duplicate) chosen.push_back(candidate);
  }
  for (size_t idx : chosen) model.centers.push_back(training.features[idx]);

  std::vector<int> assignment(n, -1);
  for (int iteration = 0; iteration < config.iterations; ++iteration) {
    bool moved = false;
    for (size_t i = 0; i < n; ++i) {
      int cluster = model.PredictCluster(training.features[i]);
      if (cluster != assignment[i]) {
        assignment[i] = cluster;
        moved = true;
      }
    }
    if (!moved) break;
    std::vector<std::vector<double>> sums(k, std::vector<double>(d, 0.0));
    std::vector<int> counts(k, 0);
    for (size_t i = 0; i < n; ++i) {
      ++counts[assignment[i]];
      for (size_t j = 0; j < d; ++j) {
        sums[assignment[i]][j] += training.features[i][j];
      }
    }
    for (int c = 0; c < k; ++c) {
      if (counts[c] == 0) continue;  // empty cluster keeps its center
      for (size_t j = 0; j < d; ++j) {
        model.centers[c][j] = sums[c][j] / counts[c];
      }
    }
  }
  return model;
}

}  // namespace fabric::mllib
