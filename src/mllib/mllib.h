#ifndef FABRIC_MLLIB_MLLIB_H_
#define FABRIC_MLLIB_MLLIB_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "pmml/model.h"
#include "spark/dataframe.h"

namespace fabric::mllib {

// A miniature Spark MLlib (Section 2: classification, clustering,
// regression): trains on DataFrames — the reads run as real Spark jobs,
// so training data loaded through V2S pays the full transfer cost — and
// exports models as PMML (the paper's MD pipeline input).

struct TrainConfig {
  int iterations = 200;
  double learning_rate = 0.1;
  uint64_t seed = 42;  // k-means initialization
};

struct RegressionModel {
  std::vector<std::string> feature_names;
  std::vector<double> weights;
  double intercept = 0;
  bool logistic = false;

  // Linear value or class-1 probability.
  double Predict(const std::vector<double>& features) const;
  pmml::PmmlModel ToPmml(const std::string& name) const;
};

struct KMeansModel {
  std::vector<std::string> feature_names;
  std::vector<std::vector<double>> centers;

  int PredictCluster(const std::vector<double>& features) const;
  pmml::PmmlModel ToPmml(const std::string& name) const;
};

// Gradient-descent ordinary least squares. `label` must be numeric.
Result<RegressionModel> TrainLinearRegression(
    sim::Process& driver, const spark::DataFrame& data,
    const std::vector<std::string>& feature_columns,
    const std::string& label_column, const TrainConfig& config = {});

// Gradient-descent logistic regression; labels in {0, 1}.
Result<RegressionModel> TrainLogisticRegression(
    sim::Process& driver, const spark::DataFrame& data,
    const std::vector<std::string>& feature_columns,
    const std::string& label_column, const TrainConfig& config = {});

// Lloyd's k-means.
Result<KMeansModel> TrainKMeans(
    sim::Process& driver, const spark::DataFrame& data,
    const std::vector<std::string>& feature_columns, int k,
    const TrainConfig& config = {});

}  // namespace fabric::mllib

#endif  // FABRIC_MLLIB_MLLIB_H_
