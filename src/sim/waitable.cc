#include "sim/waitable.h"

#include <algorithm>

#include "common/logging.h"
#include "common/string_util.h"

namespace fabric::sim {

Condition::~Condition() {
  // Processes can still be parked here when a whole simulation is torn
  // down mid-run (the engine destructor kills and resumes them later,
  // possibly after this condition is gone). Clear their back-pointers so
  // their unwinding Wait() knows not to touch the freed waiter list.
  std::lock_guard<std::mutex> lock(engine_->mu_);
  for (Process* waiter : waiters_) waiter->wait_cond_ = nullptr;
}

Status Condition::Wait(Process& self) {
  std::unique_lock<std::mutex> lock(engine_->mu_);
  if (self.killed_) {
    return CancelledError(StrCat("process '", self.name(), "' killed"));
  }
  waiters_.push_back(&self);
  self.wait_cond_ = this;
  self.state_ = Process::State::kBlocked;
  self.SwitchToEngine(lock);
  // A kill-wake resumes us while still registered; deregister. The
  // back-pointer is only still set for that case — notification and
  // ~Condition both clear it (the latter because `this` may be freed).
  if (self.wait_cond_ == this) {
    self.wait_cond_ = nullptr;
    waiters_.erase(std::remove(waiters_.begin(), waiters_.end(), &self),
                   waiters_.end());
  }
  if (self.killed_) {
    return CancelledError(StrCat("process '", self.name(), "' killed"));
  }
  return Status::OK();
}

void Condition::NotifyAll() {
  std::lock_guard<std::mutex> lock(engine_->mu_);
  for (Process* waiter : waiters_) {
    waiter->wait_cond_ = nullptr;
    engine_->PostWakeLocked(waiter, engine_->now_);
  }
  waiters_.clear();
}

void Condition::NotifyOne() {
  std::lock_guard<std::mutex> lock(engine_->mu_);
  if (waiters_.empty()) return;
  waiters_.front()->wait_cond_ = nullptr;
  engine_->PostWakeLocked(waiters_.front(), engine_->now_);
  waiters_.erase(waiters_.begin());
}

Status Mutex::Lock(Process& self) {
  // NotifyAll (not NotifyOne) below keeps this livelock-free even when a
  // woken waiter has been killed: everyone re-checks `locked_`.
  while (locked_) {
    FABRIC_RETURN_IF_ERROR(cond_.Wait(self));
  }
  locked_ = true;
  return Status::OK();
}

void Mutex::Unlock() {
  FABRIC_CHECK(locked_) << "Unlock of unlocked sim::Mutex";
  locked_ = false;
  cond_.NotifyAll();
}

Status Semaphore::Acquire(Process& self) {
  while (permits_ == 0) {
    FABRIC_RETURN_IF_ERROR(cond_.Wait(self));
  }
  --permits_;
  return Status::OK();
}

bool Semaphore::TryAcquire() {
  if (permits_ == 0) return false;
  --permits_;
  return true;
}

void Semaphore::Release() {
  ++permits_;
  cond_.NotifyAll();
}

void Latch::CountDown() {
  FABRIC_CHECK(count_ > 0) << "Latch counted below zero";
  if (--count_ == 0) cond_.NotifyAll();
}

Status Latch::Await(Process& self) {
  return cond_.WaitUntil(self, [this] { return count_ == 0; });
}

}  // namespace fabric::sim
