#ifndef FABRIC_SIM_ENGINE_H_
#define FABRIC_SIM_ENGINE_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"

namespace fabric::sim {

// Virtual time, in seconds. The engine is the only source of time for the
// whole fabric; benchmarks report these seconds.
using SimTime = double;

class Condition;
class Engine;
class Process;

using ProcessHandle = std::shared_ptr<Process>;

// A Process is a cooperatively scheduled activity backed by a host thread.
// Exactly one process (or the engine itself) runs at any instant, so all
// simulation state can be accessed without locking from process context.
// Determinism: wake-ups are ordered by (virtual time, sequence number).
//
// A process observes virtual time only through blocking calls (Sleep and
// the primitives in waitable.h). Each blocking call returns CANCELLED once
// the process has been killed; well-behaved bodies propagate that status
// and return promptly.
class Process {
 public:
  ~Process();

  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;

  Engine& engine() const { return *engine_; }
  const std::string& name() const { return name_; }
  uint64_t id() const { return id_; }

  // Current virtual time (callable only while this process is running).
  SimTime Now() const;

  // Suspends for `seconds` of virtual time. seconds >= 0; Sleep(0) yields,
  // letting already-scheduled same-time events run first.
  Status Sleep(double seconds);

  // True once Kill() was called; blocking calls fail fast afterwards.
  bool killed() const { return killed_; }

  // Convenience: CANCELLED if killed, OK otherwise. Task code sprinkles
  // this at failure points.
  Status CheckAlive() const;

  // True once the body returned.
  bool done() const { return state_ == State::kDone; }

 private:
  friend class Engine;
  friend class Condition;

  enum class State { kReady, kRunning, kBlocked, kDone };

  Process(Engine* engine, uint64_t id, std::string name,
          std::function<void(Process&)> body);

  // Hands control back to the engine and blocks the host thread until the
  // engine wakes this process again. Must hold the engine lock.
  void SwitchToEngine(std::unique_lock<std::mutex>& lock);

  // Body run on the host thread.
  void ThreadMain();

  Engine* engine_;
  uint64_t id_;
  std::string name_;
  std::function<void(Process&)> body_;
  State state_ = State::kReady;
  bool killed_ = false;
  // The condition this process is parked on, while registered in its
  // waiter list. Cleared at notify time and by ~Condition, so a process
  // resumed during teardown can tell whether deregistering is safe.
  Condition* wait_cond_ = nullptr;
  bool wake_posted_ = false;  // a wake event for this process is queued
  uint64_t wake_epoch_ = 0;   // invalidates superseded queued wakes
  std::condition_variable cv_;
  std::thread thread_;
};

// Deterministic discrete-event engine. Typical use:
//
//   sim::Engine engine;
//   engine.Spawn("worker", [&](sim::Process& self) { ... self.Sleep(3); });
//   FABRIC_CHECK_OK(engine.Run());
//   double elapsed = engine.now();
class Engine {
 public:
  Engine();
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  SimTime now() const { return now_; }

  // Spawns a process whose body starts at the current virtual time. Safe to
  // call before Run() or from inside a running process.
  ProcessHandle Spawn(std::string name, std::function<void(Process&)> body);

  // Schedules `fn` to run in engine context (no process) at absolute time
  // `when` (>= now).
  void ScheduleAt(SimTime when, std::function<void()> fn);

  // Like ScheduleAt, but returns a token the scheduler honors lazily:
  // setting *token = true before the event fires discards it without
  // advancing virtual time to `when` (the workload manager's queue
  // timeouts would otherwise stretch every simulation to its deadline).
  // The token may only be flipped from process or engine context.
  using TimerToken = std::shared_ptr<bool>;
  TimerToken ScheduleCancelableAt(SimTime when, std::function<void()> fn);

  // Marks `process` killed. If it is blocked or sleeping it wakes
  // immediately and its pending blocking call returns CANCELLED.
  void Kill(Process& process);

  // Runs until every spawned process is done. Returns INTERNAL with
  // diagnostics if the simulation deadlocks (live processes but an empty
  // event queue) or exceeds the safety step limit.
  Status Run();

  // Total events processed (telemetry / step-limit tests).
  uint64_t steps() const { return steps_; }
  void set_max_steps(uint64_t max_steps) { max_steps_ = max_steps; }

 private:
  friend class Process;
  friend class Condition;

  struct Event {
    SimTime time;
    uint64_t seq;
    // Exactly one of the two is set.
    Process* process = nullptr;
    std::function<void()> callback;
    uint64_t wake_epoch = 0;  // must match the process's current epoch
    // Set for cancellable callbacks; a true flag at pop time skips the
    // event before virtual time advances to it.
    std::shared_ptr<bool> cancelled;
  };
  struct EventLater {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  // Queues a wake event for `process` at `when`; dedupes (a process has
  // at most one live pending wake). With `force`, supersedes any pending
  // wake (immediate kill delivery). Requires the engine lock.
  void PostWakeLocked(Process* process, SimTime when, bool force = false);

  std::mutex mu_;
  std::condition_variable engine_cv_;
  bool engine_turn_ = true;  // true when the engine (not a process) may run
  SimTime now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t next_id_ = 1;
  uint64_t steps_ = 0;
  uint64_t max_steps_ = 200'000'000;
  std::priority_queue<Event, std::vector<Event>, EventLater> events_;
  std::vector<ProcessHandle> processes_;
  Process* current_ = nullptr;
};

}  // namespace fabric::sim

#endif  // FABRIC_SIM_ENGINE_H_
