#include "sim/engine.h"

#include <algorithm>

#include "common/logging.h"
#include "common/string_util.h"
#include "obs/trace.h"

namespace fabric::sim {

// ---------------------------------------------------------------- Process

Process::Process(Engine* engine, uint64_t id, std::string name,
                 std::function<void(Process&)> body)
    : engine_(engine), id_(id), name_(std::move(name)), body_(std::move(body)) {}

Process::~Process() {
  if (thread_.joinable()) thread_.join();
}

SimTime Process::Now() const { return engine_->now(); }

Status Process::CheckAlive() const {
  if (killed_) return CancelledError(StrCat("process '", name_, "' killed"));
  return Status::OK();
}

Status Process::Sleep(double seconds) {
  FABRIC_CHECK(seconds >= 0) << "negative sleep: " << seconds;
  std::unique_lock<std::mutex> lock(engine_->mu_);
  if (killed_) return CancelledError(StrCat("process '", name_, "' killed"));
  // Yields (Sleep(0)) are pure scheduling noise; only real sleeps trace.
  if (seconds > 0) {
    obs::TraceEvent("sim", "process.sleep",
                    {{"process", name_}, {"seconds", seconds}});
    obs::ObserveValue("sim.sleep_seconds", seconds);
  }
  engine_->PostWakeLocked(this, engine_->now_ + seconds);
  state_ = State::kBlocked;
  SwitchToEngine(lock);
  if (killed_) return CancelledError(StrCat("process '", name_, "' killed"));
  return Status::OK();
}

void Process::SwitchToEngine(std::unique_lock<std::mutex>& lock) {
  engine_->engine_turn_ = true;
  engine_->engine_cv_.notify_one();
  cv_.wait(lock, [this] { return state_ == State::kRunning; });
}

void Process::ThreadMain() {
  {
    // Wait for the first wake.
    std::unique_lock<std::mutex> lock(engine_->mu_);
    cv_.wait(lock, [this] { return state_ == State::kRunning; });
  }
  body_(*this);
  std::unique_lock<std::mutex> lock(engine_->mu_);
  obs::TraceEvent("sim", "process.done", {{"process", name_}, {"pid", id_}});
  state_ = State::kDone;
  engine_->engine_turn_ = true;
  engine_->engine_cv_.notify_one();
}

// ----------------------------------------------------------------- Engine

Engine::Engine() = default;

Engine::~Engine() {
  // Best effort shutdown for simulations abandoned mid-run (test failure
  // paths): kill everything and drive remaining processes until their
  // bodies observe CANCELLED and return.
  bool any_live = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& p : processes_) {
      if (p->state_ != Process::State::kDone) {
        any_live = true;
        p->killed_ = true;
        PostWakeLocked(p.get(), now_);
      }
    }
  }
  if (any_live) {
    // Replenish the step budget: the teardown drain must run even when
    // the simulation stopped because it exhausted max_steps_.
    max_steps_ = steps_ + 10'000'000;
    Status status = Run();
    if (!status.ok()) {
      FABRIC_LOG(Error) << "engine teardown: " << status.ToString();
    }
  }
}

ProcessHandle Engine::Spawn(std::string name,
                            std::function<void(Process&)> body) {
  std::lock_guard<std::mutex> lock(mu_);
  auto process = std::shared_ptr<Process>(
      new Process(this, next_id_++, std::move(name), std::move(body)));
  obs::TraceEvent(
      "sim", "process.spawn",
      {{"process", process->name_}, {"pid", process->id_}});
  obs::IncrCounter("sim.processes_spawned");
  process->thread_ = std::thread(&Process::ThreadMain, process.get());
  processes_.push_back(process);
  PostWakeLocked(process.get(), now_);
  return process;
}

void Engine::ScheduleAt(SimTime when, std::function<void()> fn) {
  std::lock_guard<std::mutex> lock(mu_);
  FABRIC_CHECK(when >= now_) << "event scheduled in the past";
  events_.push(Event{when, next_seq_++, nullptr, std::move(fn)});
}

Engine::TimerToken Engine::ScheduleCancelableAt(SimTime when,
                                                std::function<void()> fn) {
  std::lock_guard<std::mutex> lock(mu_);
  FABRIC_CHECK(when >= now_) << "event scheduled in the past";
  auto token = std::make_shared<bool>(false);
  Event event{when, next_seq_++, nullptr, std::move(fn)};
  event.cancelled = token;
  events_.push(std::move(event));
  return token;
}

void Engine::Kill(Process& process) {
  std::lock_guard<std::mutex> lock(mu_);
  if (process.state_ == Process::State::kDone || process.killed_) return;
  obs::TraceEvent("sim", "process.kill",
                  {{"process", process.name_}, {"pid", process.id_}});
  obs::IncrCounter("sim.kills");
  process.killed_ = true;
  if (process.state_ == Process::State::kBlocked) {
    PostWakeLocked(&process, now_, /*force=*/true);
  }
}

void Engine::PostWakeLocked(Process* process, SimTime when, bool force) {
  if (process->wake_posted_) {
    if (!force) return;
    // Supersede the queued wake: bump the epoch so it is skipped.
    ++process->wake_epoch_;
  }
  process->wake_posted_ = true;
  events_.push(Event{when, next_seq_++, process, nullptr,
                     process->wake_epoch_});
}

Status Engine::Run() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!events_.empty()) {
    if (++steps_ > max_steps_) {
      std::string live;
      int live_count = 0;
      for (const auto& process : processes_) {
        if (process->state_ != Process::State::kDone) {
          ++live_count;
          if (live_count <= 12) {
            if (!live.empty()) live += ", ";
            live += process->name_;
          }
        }
      }
      return InternalError(StrCat("simulation exceeded ", max_steps_,
                                  " events at t=", now_, "; ", live_count,
                                  " live processes: ", live,
                                  " (runaway loop?)"));
    }
    Event event = events_.top();
    events_.pop();
    if (event.process != nullptr &&
        (event.process->state_ == Process::State::kDone ||
         event.wake_epoch != event.process->wake_epoch_)) {
      continue;  // stale wake: skip without advancing time
    }
    if (event.cancelled != nullptr && *event.cancelled) {
      continue;  // cancelled timer: skip without advancing time
    }
    FABRIC_CHECK(event.time >= now_);
    now_ = event.time;
    if (event.callback) {
      // Callbacks run in engine context with the lock dropped so they may
      // freely Spawn / ScheduleAt / Kill. No process runs concurrently.
      lock.unlock();
      event.callback();
      lock.lock();
      continue;
    }
    Process* process = event.process;
    process->wake_posted_ = false;
    ++process->wake_epoch_;
    current_ = process;
    engine_turn_ = false;
    process->state_ = Process::State::kRunning;
    process->cv_.notify_one();
    engine_cv_.wait(lock, [this] { return engine_turn_; });
    current_ = nullptr;
  }
  // Event queue drained: every process must be done, else deadlock.
  std::string blocked;
  for (const auto& process : processes_) {
    if (process->state_ != Process::State::kDone) {
      if (!blocked.empty()) blocked += ", ";
      blocked += process->name_;
    }
  }
  if (!blocked.empty()) {
    return InternalError(
        StrCat("simulation deadlock at t=", now_, "; blocked: ", blocked));
  }
  return Status::OK();
}

}  // namespace fabric::sim
