#ifndef FABRIC_SIM_WAITABLE_H_
#define FABRIC_SIM_WAITABLE_H_

#include <vector>

#include "common/status.h"
#include "sim/engine.h"

namespace fabric::sim {

// Virtual-time synchronization primitives, usable only from process
// context. State needs no host locking beyond the engine handoff because
// exactly one process runs at a time.

// Condition variable in virtual time. Waiters resume in notify order
// (deterministic, since wakes are sequenced events).
class Condition {
 public:
  explicit Condition(Engine* engine) : engine_(engine) {}
  ~Condition();

  Condition(const Condition&) = delete;
  Condition& operator=(const Condition&) = delete;

  // Blocks `self` until notified. Returns CANCELLED if `self` is killed
  // while waiting (or was already killed).
  Status Wait(Process& self);

  // Wakes every current waiter / the longest waiting one.
  void NotifyAll();
  void NotifyOne();

  // Re-checks `predicate` each time the condition is notified, returning
  // once it holds. The predicate must be cheap and side-effect free.
  template <typename Predicate>
  Status WaitUntil(Process& self, Predicate predicate) {
    while (!predicate()) {
      FABRIC_RETURN_IF_ERROR(Wait(self));
    }
    return Status::OK();
  }

  int num_waiters() const { return static_cast<int>(waiters_.size()); }

 private:
  Engine* engine_;
  std::vector<Process*> waiters_;
};

// FIFO mutex in virtual time.
class Mutex {
 public:
  explicit Mutex(Engine* engine) : cond_(engine) {}

  Status Lock(Process& self);
  void Unlock();
  bool locked() const { return locked_; }

 private:
  Condition cond_;
  bool locked_ = false;
};

// Counting semaphore in virtual time (resource pools, executor slots,
// session limits).
class Semaphore {
 public:
  Semaphore(Engine* engine, int permits) : cond_(engine), permits_(permits) {}

  Status Acquire(Process& self);
  // Non-blocking; true on success.
  bool TryAcquire();
  void Release();
  int available() const { return permits_; }

 private:
  Condition cond_;
  int permits_;
};

// Count-down latch: Spawners use it to join a fleet of processes.
class Latch {
 public:
  Latch(Engine* engine, int count) : cond_(engine), count_(count) {}

  // Decrements; wakes waiters at zero. Callable from any process.
  void CountDown();

  // Blocks until the count reaches zero.
  Status Await(Process& self);

  int count() const { return count_; }

 private:
  Condition cond_;
  int count_;
};

}  // namespace fabric::sim

#endif  // FABRIC_SIM_WAITABLE_H_
