#ifndef FABRIC_VERTICA_CATALOG_H_
#define FABRIC_VERTICA_CATALOG_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/schema.h"
#include "storage/segment_store.h"

namespace fabric::vertica {

// Segmentation of a table across the hash ring. Vertica assigns each node
// one contiguous range of the 2^64 ring (Section 3.1.2); the boundaries
// live in the system catalog where the connector reads them.
struct Segmentation {
  // Column indices of SEGMENTED BY HASH(...); empty means UNSEGMENTED
  // (replicated to every node, served locally).
  std::vector<int> columns;
  bool unsegmented() const { return columns.empty(); }
};

// Half-open range [lower, upper) on the hash ring; upper == 0 means 2^64
// (wrap-to-end sentinel).
struct HashRange {
  uint64_t lower = 0;
  uint64_t upper = 0;

  bool Contains(uint64_t h) const {
    if (upper == 0) return h >= lower;
    return h >= lower && h < upper;
  }
  // Width as a double (for skew diagnostics only).
  double Width() const {
    if (upper == 0) return static_cast<double>(UINT64_MAX) - lower + 1;
    return static_cast<double>(upper - lower);
  }

  friend bool operator==(const HashRange& a, const HashRange& b) {
    return a.lower == b.lower && a.upper == b.upper;
  }
};

// Evenly divides the ring into `num_segments` contiguous ranges; segment i
// belongs to node i. This is also what V2S uses to build "synthetic" hash
// ranges for views and unsegmented tables.
std::vector<HashRange> EvenRingPartition(int num_segments);

// Returns which segment of an EvenRingPartition(num_segments) contains h.
int RingSegmentOf(uint64_t h, int num_segments);

struct TableDef {
  std::string name;
  storage::Schema schema;
  Segmentation segmentation;
};

struct ViewDef {
  std::string name;
  std::string query_sql;  // the SELECT this view stands for
};

// One extra physical layout of a table (C-Store/Vertica projection): a
// column subset in declared order, its own sort order and per-column
// encodings, and its own segmentation on the ring. The anchor table's
// implicit layout (all columns, insertion order, anchor segmentation) is
// the super projection; it has no ProjectionDef.
struct ProjectionDef {
  std::string name;
  std::string anchor;        // anchor table name
  std::vector<int> columns;  // anchor schema indices, declared order
  // Indices into `columns` (projection-local), major sort key first.
  std::vector<int> sort_columns;
  // One forced encoding per projection column, chosen at creation (RLE
  // on sorted low-cardinality columns, dictionary elsewhere).
  std::vector<storage::Encoding> encodings;
  // Projection-local segmentation (indices into `columns`); UNSEGMENTED
  // projections are replicated to every node.
  Segmentation segmentation;
  // Epoch of the populating commit: AT EPOCH reads older than this must
  // not be served from the projection (population collapses the anchor's
  // history into one commit).
  storage::Epoch create_epoch = 0;
  // Projection-local schema (the `columns` subset of the anchor schema).
  storage::Schema schema;

  storage::PhysicalDesign Design() const {
    return storage::PhysicalDesign{sort_columns, encodings};
  }
};

// Named metadata for every table and view in the database. Storage lives
// with the cluster (per node); the catalog is pure metadata, shared by all
// nodes (as Vertica's global catalog is).
class Catalog {
 public:
  Status CreateTable(TableDef def);
  Status DropTable(const std::string& name);
  Result<const TableDef*> GetTable(const std::string& name) const;
  bool HasTable(const std::string& name) const;

  // ALTER TABLE ... RENAME TO ... — the S2V overwrite commit path. Fails
  // if `to` exists.
  Status RenameTable(const std::string& from, const std::string& to);

  Status CreateView(ViewDef def);
  Status DropView(const std::string& name);
  Result<const ViewDef*> GetView(const std::string& name) const;
  bool HasView(const std::string& name) const;

  // Projections. Names share the table/view namespace; DropTable
  // cascades to the table's projections and RenameTable re-anchors them.
  Status CreateProjection(ProjectionDef def);
  Status DropProjection(const std::string& name);
  Result<const ProjectionDef*> GetProjection(const std::string& name) const;
  bool HasProjection(const std::string& name) const;
  // Stamps the populating commit epoch after CREATE PROJECTION commits.
  Status SetProjectionCreateEpoch(const std::string& name,
                                  storage::Epoch epoch);
  // Projections anchored on `table`, in name order.
  std::vector<const ProjectionDef*> ProjectionsOf(
      const std::string& table) const;

  std::vector<std::string> TableNames() const;
  std::vector<std::string> ViewNames() const;
  std::vector<std::string> ProjectionNames() const;

 private:
  // Keys are lower-cased (SQL identifiers are case-insensitive).
  std::map<std::string, TableDef> tables_;
  std::map<std::string, ViewDef> views_;
  std::map<std::string, ProjectionDef> projections_;
};

}  // namespace fabric::vertica

#endif  // FABRIC_VERTICA_CATALOG_H_
