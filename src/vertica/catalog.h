#ifndef FABRIC_VERTICA_CATALOG_H_
#define FABRIC_VERTICA_CATALOG_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/schema.h"

namespace fabric::vertica {

// Segmentation of a table across the hash ring. Vertica assigns each node
// one contiguous range of the 2^64 ring (Section 3.1.2); the boundaries
// live in the system catalog where the connector reads them.
struct Segmentation {
  // Column indices of SEGMENTED BY HASH(...); empty means UNSEGMENTED
  // (replicated to every node, served locally).
  std::vector<int> columns;
  bool unsegmented() const { return columns.empty(); }
};

// Half-open range [lower, upper) on the hash ring; upper == 0 means 2^64
// (wrap-to-end sentinel).
struct HashRange {
  uint64_t lower = 0;
  uint64_t upper = 0;

  bool Contains(uint64_t h) const {
    if (upper == 0) return h >= lower;
    return h >= lower && h < upper;
  }
  // Width as a double (for skew diagnostics only).
  double Width() const {
    if (upper == 0) return static_cast<double>(UINT64_MAX) - lower + 1;
    return static_cast<double>(upper - lower);
  }

  friend bool operator==(const HashRange& a, const HashRange& b) {
    return a.lower == b.lower && a.upper == b.upper;
  }
};

// Evenly divides the ring into `num_segments` contiguous ranges; segment i
// belongs to node i. This is also what V2S uses to build "synthetic" hash
// ranges for views and unsegmented tables.
std::vector<HashRange> EvenRingPartition(int num_segments);

// Returns which segment of an EvenRingPartition(num_segments) contains h.
int RingSegmentOf(uint64_t h, int num_segments);

struct TableDef {
  std::string name;
  storage::Schema schema;
  Segmentation segmentation;
};

struct ViewDef {
  std::string name;
  std::string query_sql;  // the SELECT this view stands for
};

// Named metadata for every table and view in the database. Storage lives
// with the cluster (per node); the catalog is pure metadata, shared by all
// nodes (as Vertica's global catalog is).
class Catalog {
 public:
  Status CreateTable(TableDef def);
  Status DropTable(const std::string& name);
  Result<const TableDef*> GetTable(const std::string& name) const;
  bool HasTable(const std::string& name) const;

  // ALTER TABLE ... RENAME TO ... — the S2V overwrite commit path. Fails
  // if `to` exists.
  Status RenameTable(const std::string& from, const std::string& to);

  Status CreateView(ViewDef def);
  Status DropView(const std::string& name);
  Result<const ViewDef*> GetView(const std::string& name) const;
  bool HasView(const std::string& name) const;

  std::vector<std::string> TableNames() const;
  std::vector<std::string> ViewNames() const;

 private:
  // Keys are lower-cased (SQL identifiers are case-insensitive).
  std::map<std::string, TableDef> tables_;
  std::map<std::string, ViewDef> views_;
};

}  // namespace fabric::vertica

#endif  // FABRIC_VERTICA_CATALOG_H_
