#include "vertica/dfs.h"

#include "common/string_util.h"

namespace fabric::vertica {

Status Dfs::Put(const std::string& path, std::string contents) {
  files_[path] = std::move(contents);
  return Status::OK();
}

Result<std::string> Dfs::Get(const std::string& path) const {
  auto it = files_.find(path);
  if (it == files_.end()) {
    return NotFoundError(StrCat("no DFS file '", path, "'"));
  }
  return it->second;
}

Status Dfs::Delete(const std::string& path) {
  if (files_.erase(path) == 0) {
    return NotFoundError(StrCat("no DFS file '", path, "'"));
  }
  return Status::OK();
}

bool Dfs::Exists(const std::string& path) const {
  return files_.count(path) > 0;
}

std::vector<Dfs::FileInfo> Dfs::List(const std::string& prefix) const {
  std::vector<FileInfo> out;
  for (const auto& [path, contents] : files_) {
    if (StartsWith(path, prefix)) {
      out.push_back({path, static_cast<double>(contents.size())});
    }
  }
  return out;
}

}  // namespace fabric::vertica
