#include "vertica/sql_analyzer.h"

#include <algorithm>

#include "common/string_util.h"
#include "vertica/sql_eval.h"

namespace fabric::vertica::sql {
namespace {

constexpr unsigned __int128 kRingEnd = (static_cast<unsigned __int128>(1))
                                       << 64;

}  // namespace

RingRangeSet RingRangeSet::Full() { return Of(0, kRingEnd); }

RingRangeSet RingRangeSet::Empty() { return RingRangeSet(); }

RingRangeSet RingRangeSet::Of(unsigned __int128 lower,
                              unsigned __int128 upper) {
  RingRangeSet set;
  if (upper > kRingEnd) upper = kRingEnd;
  if (lower < upper) set.ranges_.emplace_back(lower, upper);
  return set;
}

RingRangeSet RingRangeSet::OfHashRange(const HashRange& range) {
  unsigned __int128 upper =
      range.upper == 0 ? kRingEnd
                       : static_cast<unsigned __int128>(range.upper);
  return Of(range.lower, upper);
}

void RingRangeSet::Normalize() {
  std::sort(ranges_.begin(), ranges_.end());
  std::vector<std::pair<unsigned __int128, unsigned __int128>> merged;
  for (const auto& [lo, hi] : ranges_) {
    if (lo >= hi) continue;
    if (!merged.empty() && lo <= merged.back().second) {
      merged.back().second = std::max(merged.back().second, hi);
    } else {
      merged.emplace_back(lo, hi);
    }
  }
  ranges_ = std::move(merged);
}

RingRangeSet RingRangeSet::Union(const RingRangeSet& other) const {
  RingRangeSet out;
  out.ranges_ = ranges_;
  out.ranges_.insert(out.ranges_.end(), other.ranges_.begin(),
                     other.ranges_.end());
  out.Normalize();
  return out;
}

RingRangeSet RingRangeSet::Intersect(const RingRangeSet& other) const {
  RingRangeSet out;
  for (const auto& [alo, ahi] : ranges_) {
    for (const auto& [blo, bhi] : other.ranges_) {
      unsigned __int128 lo = std::max(alo, blo);
      unsigned __int128 hi = std::min(ahi, bhi);
      if (lo < hi) out.ranges_.emplace_back(lo, hi);
    }
  }
  out.Normalize();
  return out;
}

bool RingRangeSet::IsFull() const {
  return ranges_.size() == 1 && ranges_[0].first == 0 &&
         ranges_[0].second == kRingEnd;
}

bool RingRangeSet::Contains(uint64_t hash) const {
  unsigned __int128 h = hash;
  for (const auto& [lo, hi] : ranges_) {
    if (h >= lo && h < hi) return true;
  }
  return false;
}

bool RingRangeSet::Intersects(const HashRange& range) const {
  return !Intersect(OfHashRange(range)).IsEmpty();
}

unsigned __int128 RingRangeSet::TotalWidth() const {
  unsigned __int128 width = 0;
  for (const auto& [lo, hi] : ranges_) width += hi - lo;
  return width;
}

namespace {

// True when `call` is HASH(c1,...,ck) matching the segmentation columns
// in order.
bool IsSegmentationHashCall(const Expr& call,
                            const std::vector<std::string>& seg_columns) {
  if (call.kind != Expr::Kind::kCall || call.function != "HASH") {
    return false;
  }
  if (call.args.size() != seg_columns.size()) return false;
  for (size_t i = 0; i < call.args.size(); ++i) {
    if (call.args[i]->kind != Expr::Kind::kColumnRef) return false;
    if (!EqualsIgnoreCase(call.args[i]->column, seg_columns[i])) {
      return false;
    }
  }
  return true;
}

// Attempts HASH(...) <op> <integer literal>. The literal is in the signed
// SQL domain; convert back to the unsigned ring.
std::optional<RingRangeSet> RangeOfComparison(
    const Expr& expr, const std::vector<std::string>& seg_columns) {
  if (expr.kind != Expr::Kind::kBinary) return std::nullopt;
  const std::string& op = expr.op;
  if (op != "=" && op != "<" && op != "<=" && op != ">" && op != ">=") {
    return std::nullopt;
  }
  const Expr* call = expr.args[0].get();
  const Expr* literal = expr.args[1].get();
  std::string effective_op = op;
  if (!IsSegmentationHashCall(*call, seg_columns)) {
    // Allow the reversed form  <literal> <op> HASH(...).
    std::swap(call, literal);
    if (!IsSegmentationHashCall(*call, seg_columns)) return std::nullopt;
    if (effective_op == "<") effective_op = ">";
    else if (effective_op == "<=") effective_op = ">=";
    else if (effective_op == ">") effective_op = "<";
    else if (effective_op == ">=") effective_op = "<=";
  }
  // Literal may be a plain integer or a negated one.
  int64_t signed_bound = 0;
  if (literal->kind == Expr::Kind::kLiteral && !literal->literal.is_null() &&
      literal->literal.type() == storage::DataType::kInt64) {
    signed_bound = literal->literal.int64_value();
  } else if (literal->kind == Expr::Kind::kUnary && literal->op == "-" &&
             literal->args[0]->kind == Expr::Kind::kLiteral &&
             literal->args[0]->literal.type() ==
                 storage::DataType::kInt64) {
    signed_bound = -literal->args[0]->literal.int64_value();
  } else {
    return std::nullopt;
  }
  unsigned __int128 ring = SignedToRingHash(signed_bound);
  if (effective_op == "=") return RingRangeSet::Of(ring, ring + 1);
  if (effective_op == "<") return RingRangeSet::Of(0, ring);
  if (effective_op == "<=") return RingRangeSet::Of(0, ring + 1);
  if (effective_op == ">") {
    return RingRangeSet::Of(ring + 1,
                            (static_cast<unsigned __int128>(1)) << 64);
  }
  // ">="
  return RingRangeSet::Of(ring, (static_cast<unsigned __int128>(1)) << 64);
}

}  // namespace

RingRangeSet ExtractHashRanges(
    const Expr& where,
    const std::vector<std::string>& segmentation_column_names) {
  if (segmentation_column_names.empty()) return RingRangeSet::Full();
  if (where.kind == Expr::Kind::kBinary) {
    if (where.op == "AND") {
      return ExtractHashRanges(*where.args[0], segmentation_column_names)
          .Intersect(
              ExtractHashRanges(*where.args[1], segmentation_column_names));
    }
    if (where.op == "OR") {
      RingRangeSet lhs =
          ExtractHashRanges(*where.args[0], segmentation_column_names);
      RingRangeSet rhs =
          ExtractHashRanges(*where.args[1], segmentation_column_names);
      // OR weakens: if either side is unconstrained the whole is.
      if (lhs.IsFull() || rhs.IsFull()) return RingRangeSet::Full();
      return lhs.Union(rhs);
    }
    if (auto range = RangeOfComparison(where, segmentation_column_names)) {
      return *range;
    }
    return RingRangeSet::Full();
  }
  return RingRangeSet::Full();
}

}  // namespace fabric::vertica::sql
