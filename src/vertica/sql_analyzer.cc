#include "vertica/sql_analyzer.h"

#include <algorithm>

#include "common/string_util.h"
#include "vertica/sql_eval.h"

namespace fabric::vertica::sql {
namespace {

constexpr unsigned __int128 kRingEnd = (static_cast<unsigned __int128>(1))
                                       << 64;

}  // namespace

RingRangeSet RingRangeSet::Full() { return Of(0, kRingEnd); }

RingRangeSet RingRangeSet::Empty() { return RingRangeSet(); }

RingRangeSet RingRangeSet::Of(unsigned __int128 lower,
                              unsigned __int128 upper) {
  RingRangeSet set;
  if (upper > kRingEnd) upper = kRingEnd;
  if (lower < upper) set.ranges_.emplace_back(lower, upper);
  return set;
}

RingRangeSet RingRangeSet::OfHashRange(const HashRange& range) {
  unsigned __int128 upper =
      range.upper == 0 ? kRingEnd
                       : static_cast<unsigned __int128>(range.upper);
  return Of(range.lower, upper);
}

void RingRangeSet::Normalize() {
  std::sort(ranges_.begin(), ranges_.end());
  std::vector<std::pair<unsigned __int128, unsigned __int128>> merged;
  for (const auto& [lo, hi] : ranges_) {
    if (lo >= hi) continue;
    if (!merged.empty() && lo <= merged.back().second) {
      merged.back().second = std::max(merged.back().second, hi);
    } else {
      merged.emplace_back(lo, hi);
    }
  }
  ranges_ = std::move(merged);
}

RingRangeSet RingRangeSet::Union(const RingRangeSet& other) const {
  RingRangeSet out;
  out.ranges_ = ranges_;
  out.ranges_.insert(out.ranges_.end(), other.ranges_.begin(),
                     other.ranges_.end());
  out.Normalize();
  return out;
}

RingRangeSet RingRangeSet::Intersect(const RingRangeSet& other) const {
  RingRangeSet out;
  for (const auto& [alo, ahi] : ranges_) {
    for (const auto& [blo, bhi] : other.ranges_) {
      unsigned __int128 lo = std::max(alo, blo);
      unsigned __int128 hi = std::min(ahi, bhi);
      if (lo < hi) out.ranges_.emplace_back(lo, hi);
    }
  }
  out.Normalize();
  return out;
}

bool RingRangeSet::IsFull() const {
  return ranges_.size() == 1 && ranges_[0].first == 0 &&
         ranges_[0].second == kRingEnd;
}

bool RingRangeSet::Contains(uint64_t hash) const {
  unsigned __int128 h = hash;
  for (const auto& [lo, hi] : ranges_) {
    if (h >= lo && h < hi) return true;
  }
  return false;
}

bool RingRangeSet::Intersects(const HashRange& range) const {
  return !Intersect(OfHashRange(range)).IsEmpty();
}

unsigned __int128 RingRangeSet::TotalWidth() const {
  unsigned __int128 width = 0;
  for (const auto& [lo, hi] : ranges_) width += hi - lo;
  return width;
}

namespace {

// True when `call` is HASH(c1,...,ck) matching the segmentation columns
// in order.
bool IsSegmentationHashCall(const Expr& call,
                            const std::vector<std::string>& seg_columns) {
  if (call.kind != Expr::Kind::kCall || call.function != "HASH") {
    return false;
  }
  if (call.args.size() != seg_columns.size()) return false;
  for (size_t i = 0; i < call.args.size(); ++i) {
    if (call.args[i]->kind != Expr::Kind::kColumnRef) return false;
    if (!EqualsIgnoreCase(call.args[i]->column, seg_columns[i])) {
      return false;
    }
  }
  return true;
}

// Attempts HASH(...) <op> <integer literal>. The literal is in the signed
// SQL domain; convert back to the unsigned ring.
std::optional<RingRangeSet> RangeOfComparison(
    const Expr& expr, const std::vector<std::string>& seg_columns) {
  if (expr.kind != Expr::Kind::kBinary) return std::nullopt;
  const std::string& op = expr.op;
  if (op != "=" && op != "<" && op != "<=" && op != ">" && op != ">=") {
    return std::nullopt;
  }
  const Expr* call = expr.args[0].get();
  const Expr* literal = expr.args[1].get();
  std::string effective_op = op;
  if (!IsSegmentationHashCall(*call, seg_columns)) {
    // Allow the reversed form  <literal> <op> HASH(...).
    std::swap(call, literal);
    if (!IsSegmentationHashCall(*call, seg_columns)) return std::nullopt;
    if (effective_op == "<") effective_op = ">";
    else if (effective_op == "<=") effective_op = ">=";
    else if (effective_op == ">") effective_op = "<";
    else if (effective_op == ">=") effective_op = "<=";
  }
  // Literal may be a plain integer or a negated one.
  int64_t signed_bound = 0;
  if (literal->kind == Expr::Kind::kLiteral && !literal->literal.is_null() &&
      literal->literal.type() == storage::DataType::kInt64) {
    signed_bound = literal->literal.int64_value();
  } else if (literal->kind == Expr::Kind::kUnary && literal->op == "-" &&
             literal->args[0]->kind == Expr::Kind::kLiteral &&
             literal->args[0]->literal.type() ==
                 storage::DataType::kInt64) {
    signed_bound = -literal->args[0]->literal.int64_value();
  } else {
    return std::nullopt;
  }
  unsigned __int128 ring = SignedToRingHash(signed_bound);
  if (effective_op == "=") return RingRangeSet::Of(ring, ring + 1);
  if (effective_op == "<") return RingRangeSet::Of(0, ring);
  if (effective_op == "<=") return RingRangeSet::Of(0, ring + 1);
  if (effective_op == ">") {
    return RingRangeSet::Of(ring + 1,
                            (static_cast<unsigned __int128>(1)) << 64);
  }
  // ">="
  return RingRangeSet::Of(ring, (static_cast<unsigned __int128>(1)) << 64);
}

}  // namespace

namespace {

using storage::CompareOp;
using storage::CompareTerm;
using storage::HashRangeTerm;
using storage::NullTestTerm;

std::optional<CompareOp> CompareOpOf(const std::string& op) {
  if (op == "=") return CompareOp::kEq;
  if (op == "<>") return CompareOp::kNe;
  if (op == "<") return CompareOp::kLt;
  if (op == "<=") return CompareOp::kLe;
  if (op == ">") return CompareOp::kGt;
  if (op == ">=") return CompareOp::kGe;
  return std::nullopt;
}

CompareOp FlipCompareOp(CompareOp op) {
  switch (op) {
    case CompareOp::kLt:
      return CompareOp::kGt;
    case CompareOp::kLe:
      return CompareOp::kGe;
    case CompareOp::kGt:
      return CompareOp::kLt;
    case CompareOp::kGe:
      return CompareOp::kLe;
    default:
      return op;  // = and <> are symmetric
  }
}

// Extracts a non-null literal, folding a unary minus over a numeric one.
std::optional<storage::Value> LiteralOf(const Expr& expr) {
  if (expr.kind == Expr::Kind::kLiteral) {
    if (expr.literal.is_null()) return std::nullopt;
    return expr.literal;
  }
  if (expr.kind == Expr::Kind::kUnary && expr.op == "-" &&
      expr.args[0]->kind == Expr::Kind::kLiteral &&
      !expr.args[0]->literal.is_null()) {
    const storage::Value& v = expr.args[0]->literal;
    if (v.type() == storage::DataType::kInt64) {
      return storage::Value::Int64(-v.int64_value());
    }
    if (v.type() == storage::DataType::kFloat64) {
      return storage::Value::Float64(-v.float64_value());
    }
  }
  return std::nullopt;
}

// Splits an AND tree into conjuncts, left to right.
void SplitConjuncts(const Expr& expr, std::vector<const Expr*>* out) {
  if (expr.kind == Expr::Kind::kBinary && expr.op == "AND") {
    SplitConjuncts(*expr.args[0], out);
    SplitConjuncts(*expr.args[1], out);
    return;
  }
  out->push_back(&expr);
}

// column <op> literal (either order) with matching types.
bool CompileCompare(const Expr& expr, const storage::Schema& schema,
                    storage::ScanPredicate* pred) {
  if (expr.kind != Expr::Kind::kBinary) return false;
  auto op = CompareOpOf(expr.op);
  if (!op) return false;
  const Expr* col = expr.args[0].get();
  const Expr* lit = expr.args[1].get();
  if (col->kind != Expr::Kind::kColumnRef) {
    std::swap(col, lit);
    if (col->kind != Expr::Kind::kColumnRef) return false;
    *op = FlipCompareOp(*op);
  }
  auto idx = schema.IndexOf(col->column);
  if (!idx.ok()) return false;
  auto literal = LiteralOf(*lit);
  if (!literal) return false;

  storage::DataType column_type = schema.column(*idx).type;
  bool column_is_string = column_type == storage::DataType::kVarchar;
  bool literal_is_string = literal->type() == storage::DataType::kVarchar;
  // Mixed string/numeric comparisons are interpreter errors; leave them
  // to the residual so the error surfaces identically.
  if (column_is_string != literal_is_string) return false;

  CompareTerm term;
  term.column = *idx;
  term.op = *op;
  term.is_string = column_is_string;
  if (column_is_string) {
    term.text = literal->varchar_value();
  } else {
    term.number = literal->NumericValue();
  }
  pred->compares.push_back(std::move(term));
  return true;
}

bool CompileNullTest(const Expr& expr, const storage::Schema& schema,
                     storage::ScanPredicate* pred) {
  if (expr.kind != Expr::Kind::kIsNull) return false;
  if (expr.args[0]->kind != Expr::Kind::kColumnRef) return false;
  auto idx = schema.IndexOf(expr.args[0]->column);
  if (!idx.ok()) return false;
  pred->null_tests.push_back(NullTestTerm{*idx, expr.negated});
  return true;
}

// HASH(col, ...) <op> integer literal (either order), folded into the
// inclusive unsigned ring bounds of a HashRangeTerm. Terms over the same
// column list merge by bound intersection.
bool CompileHashRange(const Expr& expr, const storage::Schema& schema,
                      storage::ScanPredicate* pred) {
  if (expr.kind != Expr::Kind::kBinary) return false;
  auto op = CompareOpOf(expr.op);
  if (!op || *op == CompareOp::kNe) return false;
  const Expr* call = expr.args[0].get();
  const Expr* lit = expr.args[1].get();
  if (call->kind != Expr::Kind::kCall) {
    std::swap(call, lit);
    if (call->kind != Expr::Kind::kCall) return false;
    *op = FlipCompareOp(*op);
  }
  if (call->function != "HASH" || call->args.empty()) return false;
  std::vector<int> columns;
  for (const ExprPtr& arg : call->args) {
    if (arg->kind != Expr::Kind::kColumnRef) return false;
    auto idx = schema.IndexOf(arg->column);
    if (!idx.ok()) return false;
    columns.push_back(*idx);
  }
  auto literal = LiteralOf(*lit);
  if (!literal || literal->type() != storage::DataType::kInt64) {
    return false;
  }
  uint64_t ring = SignedToRingHash(literal->int64_value());

  uint64_t lower = 0;
  uint64_t upper = ~0ull;
  bool empty = false;
  switch (*op) {
    case CompareOp::kEq:
      lower = upper = ring;
      break;
    case CompareOp::kLt:
      if (ring == 0) empty = true;
      else upper = ring - 1;
      break;
    case CompareOp::kLe:
      upper = ring;
      break;
    case CompareOp::kGt:
      if (ring == ~0ull) empty = true;
      else lower = ring + 1;
      break;
    case CompareOp::kGe:
      lower = ring;
      break;
    case CompareOp::kNe:
      return false;
  }
  if (empty) {
    pred->always_false = true;
    return true;
  }
  for (HashRangeTerm& existing : pred->hash_ranges) {
    if (existing.columns == columns) {
      existing.lower = std::max(existing.lower, lower);
      existing.upper = std::min(existing.upper, upper);
      if (existing.lower > existing.upper) pred->always_false = true;
      return true;
    }
  }
  HashRangeTerm term;
  term.columns = std::move(columns);
  term.lower = lower;
  term.upper = upper;
  pred->hash_ranges.push_back(std::move(term));
  return true;
}

}  // namespace

CompiledScan CompileScanPredicate(const Expr& where,
                                  const storage::Schema& schema) {
  CompiledScan out;
  std::vector<const Expr*> conjuncts;
  SplitConjuncts(where, &conjuncts);
  std::vector<const Expr*> leftovers;
  for (const Expr* conjunct : conjuncts) {
    if (CompileCompare(*conjunct, schema, &out.predicate)) continue;
    if (CompileNullTest(*conjunct, schema, &out.predicate)) continue;
    if (CompileHashRange(*conjunct, schema, &out.predicate)) continue;
    leftovers.push_back(conjunct);
  }
  for (const Expr* leftover : leftovers) {
    out.residual = out.residual == nullptr
                       ? leftover->Clone()
                       : Expr::Binary("AND", std::move(out.residual),
                                      leftover->Clone());
  }
  return out;
}

RingRangeSet ExtractHashRanges(
    const Expr& where,
    const std::vector<std::string>& segmentation_column_names) {
  if (segmentation_column_names.empty()) return RingRangeSet::Full();
  if (where.kind == Expr::Kind::kBinary) {
    if (where.op == "AND") {
      return ExtractHashRanges(*where.args[0], segmentation_column_names)
          .Intersect(
              ExtractHashRanges(*where.args[1], segmentation_column_names));
    }
    if (where.op == "OR") {
      RingRangeSet lhs =
          ExtractHashRanges(*where.args[0], segmentation_column_names);
      RingRangeSet rhs =
          ExtractHashRanges(*where.args[1], segmentation_column_names);
      // OR weakens: if either side is unconstrained the whole is.
      if (lhs.IsFull() || rhs.IsFull()) return RingRangeSet::Full();
      return lhs.Union(rhs);
    }
    if (auto range = RangeOfComparison(where, segmentation_column_names)) {
      return *range;
    }
    return RingRangeSet::Full();
  }
  return RingRangeSet::Full();
}

}  // namespace fabric::vertica::sql
