#ifndef FABRIC_VERTICA_UDX_HLL_H_
#define FABRIC_VERTICA_UDX_HLL_H_

// HyperLogLog UDx family (the Criteo vertica-hyperloglog surface), built
// on common/hll.h and registered on every Database at construction:
//
//   APPROXIMATE_COUNT_DISTINCT(expr [, precision])   aggregate -> INTEGER
//       sketches the column and finalizes to the cardinality estimate.
//   HLL_SKETCH(expr [, precision])                   aggregate -> VARCHAR
//       same state, but finalizes to the versioned serialized sketch so
//       the registers can be stored (S2V) and merged later.
//   HLL_UNION_AGG(sketch_column)                     aggregate -> VARCHAR
//       merges previously serialized sketches (register-wise max).
//   HLL_ESTIMATE(sketch)                             scalar    -> INTEGER
//       reads a serialized sketch back into its cardinality estimate.
//
// Precision defaults to hll::kDefaultPrecision (12) and must be a
// constant in [4, 18]. Unknown sketch versions fail with a typed
// FailedPrecondition (hll::kVersionErrorMarker), never a garbage number.

namespace fabric::vertica {

class Database;

void RegisterHllFunctions(Database* db);

}  // namespace fabric::vertica

#endif  // FABRIC_VERTICA_UDX_HLL_H_
