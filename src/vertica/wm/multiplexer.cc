#include "vertica/wm/multiplexer.h"

#include <algorithm>

#include "common/string_util.h"
#include "obs/trace.h"

namespace fabric::vertica::wm {

Multiplexer::Multiplexer(sim::Engine* engine, Options options)
    : engine_(engine), options_(std::move(options)), work_(engine) {}

int Multiplexer::AddSession(SessionSpec spec) {
  FABRIC_CHECK(!launched_) << "AddSession after Launch";
  FABRIC_CHECK(spec.steps > 0);
  int id = static_cast<int>(specs_.size());
  specs_.push_back(std::move(spec));
  status_.push_back(Status::OK());
  return id;
}

void Multiplexer::Launch() {
  FABRIC_CHECK(!launched_) << "Launch called twice";
  launched_ = true;
  stats_.sessions = static_cast<int>(specs_.size());
  sorted_starts_.reserve(specs_.size());
  for (size_t i = 0; i < specs_.size(); ++i) {
    sorted_starts_.push_back(specs_[i].start);
    ready_.push(Entry{specs_[i].start, static_cast<int>(i), 0});
  }
  std::sort(sorted_starts_.begin(), sorted_starts_.end());
  int lanes = std::max(1, options_.lanes);
  for (int lane = 0; lane < lanes; ++lane) {
    engine_->Spawn(StrCat(options_.name, ":lane", lane),
                   [this](sim::Process& self) { LaneBody(self); });
  }
}

Status Multiplexer::Join(sim::Process& self) {
  FABRIC_CHECK(launched_) << "Join before Launch";
  return work_.WaitUntil(
      self, [this] { return finished_ == stats_.sessions; });
}

void Multiplexer::UpdatePeak(double now) {
  // Sessions are open from their scheduled start until their last step
  // completes; starts are known ahead, so the open count is exact.
  auto it = std::upper_bound(sorted_starts_.begin(), sorted_starts_.end(),
                             now);
  int started = static_cast<int>(it - sorted_starts_.begin());
  int open = started - finished_;
  if (open > stats_.peak_concurrent) stats_.peak_concurrent = open;
}

void Multiplexer::LaneBody(sim::Process& self) {
  while (true) {
    Status wait = work_.WaitUntil(self, [this] {
      return !ready_.empty() || finished_ == stats_.sessions;
    });
    if (!wait.ok()) return;  // killed during teardown
    if (ready_.empty()) return;  // every session finished
    Entry top = ready_.top();
    if (top.ready > self.Now()) {
      // Sleep toward the earliest entry; whichever lane wakes first
      // takes it, the rest loop back and re-evaluate.
      if (!self.Sleep(top.ready - self.Now()).ok()) return;
      continue;
    }
    ready_.pop();
    UpdatePeak(self.Now());
    const SessionSpec& spec = specs_[top.session];
    Status status = spec.body(self, top.session, top.step);
    ++stats_.steps_run;
    if (!status.ok()) {
      ++stats_.steps_failed;
      status_[top.session] = status;
    }
    if (status.ok() && top.step + 1 < spec.steps) {
      ready_.push(Entry{self.Now() + spec.think, top.session, top.step + 1});
    } else {
      ++finished_;
    }
    UpdatePeak(self.Now());
    work_.NotifyAll();
    if (self.killed()) return;
  }
}

}  // namespace fabric::vertica::wm
