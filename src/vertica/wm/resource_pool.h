#ifndef FABRIC_VERTICA_WM_RESOURCE_POOL_H_
#define FABRIC_VERTICA_WM_RESOURCE_POOL_H_

// Workload manager: named hierarchical resource pools with priority
// admission queues, per-query memory grants and cascade-to-parent
// borrowing — the production-concurrency substrate of the Vertica paper
// ("C-Store 7 Years Later"). Every statement entering the database (SQL
// sessions, V2S partition scans, S2V load sessions) is tagged to a pool
// and admitted through it; the grant it receives carries the memory
// budget that spilling operators respect.
//
// Determinism contract: an uncontended admission is pure bookkeeping —
// no virtual time passes and no trace events are emitted beyond the
// "wm" category — so a workload that never queues or spills produces
// event traces byte-identical to a WM-off run modulo "wm" events, and a
// database configured without pools is bit-for-bit the pre-WM system.

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "sim/engine.h"
#include "sim/waitable.h"

namespace fabric::vertica::wm {

// One named pool. All capacities are per node (each node runs its own
// admission, mirroring Vertica's per-node resource manager).
struct PoolConfig {
  std::string name;
  // Pool to borrow from when this pool is at capacity ("" = none). The
  // borrowed grant is accounted against the target pool's budget and
  // concurrency, walking up the chain until a pool fits.
  std::string cascade_to;
  // Higher priorities are granted first; FIFO within a priority.
  int priority = 0;
  // Concurrent grants per node (0 = unlimited).
  int max_concurrency = 0;
  // Memory budget per node, bytes (0 = unlimited).
  double memory_budget = 0;
  // Default per-query grant, bytes. 0 derives memory_budget /
  // planned_concurrency (unlimited when the budget is unlimited).
  double query_memory = 0;
  // Divisor for the derived per-query grant (0: max_concurrency, or 4
  // when that is unlimited).
  int planned_concurrency = 0;
  // How long a request may queue before failing with the typed
  // WM_QUEUE_TIMEOUT error, virtual seconds (0 = wait forever).
  double queue_timeout = 0;
};

struct WorkloadConfig {
  std::vector<PoolConfig> pools;
  // Pool used by untagged sessions; created implicitly (unlimited)
  // when not listed in `pools`.
  std::string default_pool = "general";

  // The workload manager is built only when at least one pool is
  // configured; an empty config is the legacy flat-semaphore database.
  bool enabled() const { return !pools.empty(); }
};

// A granted admission. Plain value: released via
// WorkloadManager::Release, carried by the session for the statement's
// lifetime so budget-aware operators can read their memory allowance.
struct Grant {
  int pool = -1;     // pool index the resources were taken from
  int origin = -1;   // pool index the request was tagged to
  int node = -1;
  double memory = 0;  // granted bytes (0 = unlimited)

  bool valid() const { return pool >= 0; }
};

// Stable message prefixes for the typed RESOURCE_EXHAUSTED errors, so
// retry logic matches on a contract rather than on prose.
inline constexpr char kQueueTimeoutToken[] = "WM_QUEUE_TIMEOUT";
inline constexpr char kRequestExceedsPoolToken[] = "WM_REQUEST_EXCEEDS_POOL";

bool IsQueueTimeoutError(const Status& status);

class WorkloadManager {
 public:
  WorkloadManager(sim::Engine* engine, WorkloadConfig config, int num_nodes);
  ~WorkloadManager();

  WorkloadManager(const WorkloadManager&) = delete;
  WorkloadManager& operator=(const WorkloadManager&) = delete;

  // Admits one request on `node` against the named pool (empty name:
  // the default pool). `memory_request` of 0 takes the pool's derived
  // per-query grant. Blocks in the pool's priority queue while the pool
  // (and its cascade chain) is at capacity; fails with the typed
  // RESOURCE_EXHAUSTED errors above on queue timeout or on a request no
  // pool in the chain could ever satisfy, with UNAVAILABLE when the
  // node goes down while queued, with INVALID_ARGUMENT for an unknown
  // pool, and with CANCELLED when the caller is killed.
  Result<Grant> Admit(sim::Process& self, int node,
                      const std::string& pool_name, double memory_request);

  // Returns the grant's resources and wakes whatever now fits, highest
  // priority first. Safe to call with an invalid grant (no-op).
  void Release(const Grant& grant);

  // Attributes an operator spill to the grant's pool (telemetry only).
  void ReportSpill(const Grant& grant, double bytes);

  // Fails every request queued on `node` with UNAVAILABLE (the node
  // died; running grants unwind through their sessions' own teardown).
  void OnNodeDown(int node);

  const WorkloadConfig& config() const { return config_; }
  int num_pools() const { return static_cast<int>(pools_.size()); }
  Result<int> PoolIndex(const std::string& name) const;
  const PoolConfig& pool(int index) const { return pools_[index]; }

  // Telemetry rows for v_monitor.resource_pool_status.
  struct PoolStatus {
    int node = 0;
    std::string pool;
    int priority = 0;
    int max_concurrency = 0;
    double memory_budget = 0;
    double memory_inuse = 0;
    int running = 0;
    int queued = 0;
    int64_t admitted = 0;
    int64_t borrowed = 0;
    int64_t timeouts = 0;
    int64_t rejected = 0;
    int64_t spills = 0;
    double spill_bytes = 0;
    double queue_wait_seconds = 0;  // cumulative
  };
  std::vector<PoolStatus> PoolStatusRows() const;

  // Telemetry rows for v_monitor.resource_queues (currently queued
  // requests, in grant-consideration order).
  struct QueueEntry {
    int node = 0;
    std::string pool;
    int priority = 0;
    int position = 0;  // within the node's queue ordering
    double memory_requested = 0;
    double queued_at = 0;  // virtual time of queue entry
  };
  std::vector<QueueEntry> QueueRows() const;

 private:
  struct Waiter;
  struct PoolNodeState;

  int EffectivePoolOrDefault(const std::string& name) const;
  double DefaultGrantMemory(int pool) const;
  bool FitsIn(int pool, int node, double memory) const;
  // First pool in `origin`'s cascade chain with room, or -1.
  int TryTake(int origin, int node, double memory);
  // Grants every queued request that now fits on `node`, highest
  // priority first, never past a blocked (non-fitting) pool chain.
  void DrainQueue(int node);
  void RemoveWaiter(const Waiter* waiter);
  bool ChainsOverlap(int pool_a, int pool_b) const;

  sim::Engine* engine_;
  WorkloadConfig config_;
  int num_nodes_;
  std::vector<PoolConfig> pools_;                  // normalized
  std::vector<std::vector<int>> chains_;           // pool -> cascade chain
  std::map<std::string, int> by_name_;
  // state_[pool][node]
  std::vector<std::vector<PoolNodeState>> state_;
  // Queued waiters per node, in arrival order; grant order is
  // (priority desc, arrival asc), computed at drain time.
  std::vector<std::vector<std::unique_ptr<Waiter>>> queues_;
  uint64_t next_waiter_id_ = 0;
};

}  // namespace fabric::vertica::wm

#endif  // FABRIC_VERTICA_WM_RESOURCE_POOL_H_
