#include "vertica/wm/resource_pool.h"

#include <algorithm>
#include <set>

#include "common/string_util.h"
#include "obs/trace.h"

namespace fabric::vertica::wm {

bool IsQueueTimeoutError(const Status& status) {
  return status.code() == StatusCode::kResourceExhausted &&
         StartsWith(std::string(status.message()), kQueueTimeoutToken);
}

// Per-(pool, node) accounting. All mutation happens from process or
// engine context, so no locking beyond the engine handoff is needed.
struct WorkloadManager::PoolNodeState {
  int running = 0;
  double memory_inuse = 0;
  int64_t admitted = 0;
  int64_t borrowed = 0;
  int64_t timeouts = 0;
  int64_t rejected = 0;
  int64_t spills = 0;
  double spill_bytes = 0;
  double queue_wait_seconds = 0;
};

struct WorkloadManager::Waiter {
  uint64_t id = 0;
  int pool = -1;  // origin pool
  int node = 0;
  int priority = 0;
  double memory = 0;
  double queued_at = 0;
  // Outcome, set by the granting/timeout/kill path before notify.
  int granted_from = -1;
  bool timed_out = false;
  bool node_down = false;
  std::unique_ptr<sim::Condition> cond;
  sim::Engine::TimerToken timer;  // null when the pool never times out

  bool decided() const { return granted_from >= 0 || timed_out || node_down; }
};

WorkloadManager::WorkloadManager(sim::Engine* engine, WorkloadConfig config,
                                 int num_nodes)
    : engine_(engine), config_(std::move(config)), num_nodes_(num_nodes) {
  pools_ = config_.pools;
  bool has_default = false;
  for (const PoolConfig& pool : pools_) {
    if (pool.name == config_.default_pool) has_default = true;
  }
  if (!has_default) {
    PoolConfig general;
    general.name = config_.default_pool;
    pools_.push_back(std::move(general));
  }
  for (size_t i = 0; i < pools_.size(); ++i) {
    by_name_.emplace(pools_[i].name, static_cast<int>(i));
  }
  // Cascade chains, cycle-safe: walk cascade_to until a pool repeats or
  // names nothing. Unknown targets end the chain (a misconfigured
  // cascade degrades to "no borrowing", never to a crash or a loop).
  chains_.resize(pools_.size());
  for (size_t i = 0; i < pools_.size(); ++i) {
    std::set<int> seen;
    int at = static_cast<int>(i);
    while (at >= 0 && seen.insert(at).second) {
      chains_[i].push_back(at);
      auto it = by_name_.find(pools_[at].cascade_to);
      at = it == by_name_.end() ? -1 : it->second;
    }
  }
  state_.assign(pools_.size(),
                std::vector<PoolNodeState>(static_cast<size_t>(num_nodes_)));
  queues_.resize(static_cast<size_t>(num_nodes_));
}

WorkloadManager::~WorkloadManager() = default;

Result<int> WorkloadManager::PoolIndex(const std::string& name) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    return InvalidArgumentError(StrCat("unknown resource pool '", name, "'"));
  }
  return it->second;
}

int WorkloadManager::EffectivePoolOrDefault(const std::string& name) const {
  auto it = by_name_.find(name.empty() ? config_.default_pool : name);
  return it == by_name_.end() ? -1 : it->second;
}

double WorkloadManager::DefaultGrantMemory(int pool) const {
  const PoolConfig& p = pools_[pool];
  if (p.query_memory > 0) return p.query_memory;
  if (p.memory_budget <= 0) return 0;  // unlimited budget: unlimited grant
  int planned = p.planned_concurrency > 0
                    ? p.planned_concurrency
                    : (p.max_concurrency > 0 ? p.max_concurrency : 4);
  return p.memory_budget / planned;
}

bool WorkloadManager::FitsIn(int pool, int node, double memory) const {
  const PoolConfig& p = pools_[pool];
  const PoolNodeState& s = state_[pool][node];
  if (p.max_concurrency > 0 && s.running >= p.max_concurrency) return false;
  if (p.memory_budget > 0 && s.memory_inuse + memory > p.memory_budget) {
    return false;
  }
  return true;
}

int WorkloadManager::TryTake(int origin, int node, double memory) {
  for (int pool : chains_[origin]) {
    if (!FitsIn(pool, node, memory)) continue;
    PoolNodeState& s = state_[pool][node];
    ++s.running;
    s.memory_inuse += memory;
    ++s.admitted;
    if (pool != origin) ++s.borrowed;
    return pool;
  }
  return -1;
}

bool WorkloadManager::ChainsOverlap(int pool_a, int pool_b) const {
  for (int a : chains_[pool_a]) {
    for (int b : chains_[pool_b]) {
      if (a == b) return true;
    }
  }
  return false;
}

Result<Grant> WorkloadManager::Admit(sim::Process& self, int node,
                                     const std::string& pool_name,
                                     double memory_request) {
  FABRIC_RETURN_IF_ERROR(self.CheckAlive());
  int origin = EffectivePoolOrDefault(pool_name);
  if (origin < 0) {
    return InvalidArgumentError(
        StrCat("unknown resource pool '", pool_name, "'"));
  }
  double memory =
      memory_request > 0 ? memory_request : DefaultGrantMemory(origin);

  // A request no pool in the chain could satisfy even when idle fails
  // fast with a stable message (Vertica's "request exceeds resources").
  bool could_ever_fit = false;
  for (int pool : chains_[origin]) {
    const PoolConfig& p = pools_[pool];
    if (p.memory_budget <= 0 || memory <= p.memory_budget) {
      could_ever_fit = true;
      break;
    }
  }
  if (!could_ever_fit) {
    ++state_[origin][node].rejected;
    obs::IncrCounter("wm.rejected");
    return ResourceExhaustedError(
        StrCat(kRequestExceedsPoolToken, ": pool '", pools_[origin].name,
               "' cannot grant ", memory, " bytes on any pool in its chain"));
  }

  // Barge only past strictly lower-priority waiters on an overlapping
  // chain; otherwise join the queue so FIFO within a priority holds and
  // a queued high-priority request is never overtaken.
  bool must_queue = false;
  for (const auto& waiter : queues_[node]) {
    if (waiter->decided()) continue;
    if (waiter->priority >= pools_[origin].priority &&
        ChainsOverlap(waiter->pool, origin)) {
      must_queue = true;
      break;
    }
  }
  if (!must_queue) {
    int from = TryTake(origin, node, memory);
    if (from >= 0) {
      obs::IncrCounter("wm.admitted");
      obs::TraceEvent("wm", "grant",
                      {{"pool", pools_[origin].name},
                       {"from", pools_[from].name},
                       {"node", node},
                       {"memory", memory}});
      return Grant{from, origin, node, memory};
    }
  }

  // Queue on the sim clock.
  auto waiter = std::make_unique<Waiter>();
  Waiter* w = waiter.get();
  w->id = next_waiter_id_++;
  w->pool = origin;
  w->node = node;
  w->priority = pools_[origin].priority;
  w->memory = memory;
  w->queued_at = self.Now();
  w->cond = std::make_unique<sim::Condition>(engine_);
  queues_[node].push_back(std::move(waiter));
  obs::IncrCounter("wm.queued");
  obs::TraceEvent("wm", "queue.enter",
                  {{"pool", pools_[origin].name},
                   {"node", node},
                   {"priority", w->priority},
                   {"memory", memory}});
  double timeout = pools_[origin].queue_timeout;
  if (timeout > 0) {
    uint64_t id = w->id;
    w->timer = engine_->ScheduleCancelableAt(
        self.Now() + timeout, [this, node, id] {
          for (const auto& queued : queues_[node]) {
            if (queued->id != id || queued->decided()) continue;
            queued->timed_out = true;
            queued->cond->NotifyAll();
            return;
          }
        });
  }

  Status wait = w->cond->WaitUntil(self, [w] { return w->decided(); });
  if (w->timer != nullptr) *w->timer = true;
  if (!wait.ok()) {
    // Killed while queued: give back anything a concurrent grant path
    // already took for us, then vanish from the queue.
    if (w->granted_from >= 0) {
      Release(Grant{w->granted_from, w->pool, node, w->memory});
    }
    RemoveWaiter(w);
    return wait;
  }
  double waited = self.Now() - w->queued_at;
  state_[origin][node].queue_wait_seconds += waited;
  obs::ObserveValue("wm.queue_wait_seconds", waited);
  if (w->timed_out) {
    ++state_[origin][node].timeouts;
    obs::IncrCounter("wm.queue_timeouts");
    obs::TraceEvent("wm", "queue.timeout",
                    {{"pool", pools_[origin].name},
                     {"node", node},
                     {"waited", waited}});
    RemoveWaiter(w);
    return ResourceExhaustedError(
        StrCat(kQueueTimeoutToken, ": pool '", pools_[origin].name,
               "' queue timeout after ", timeout, "s on node ", node));
  }
  if (w->node_down) {
    RemoveWaiter(w);
    return UnavailableError(
        StrCat("node ", node, " went down while queued on pool '",
               pools_[origin].name, "'"));
  }
  int from = w->granted_from;
  obs::IncrCounter("wm.admitted");
  obs::TraceEvent("wm", "queue.grant",
                  {{"pool", pools_[origin].name},
                   {"from", pools_[from].name},
                   {"node", node},
                   {"memory", memory},
                   {"waited", waited}});
  RemoveWaiter(w);
  return Grant{from, origin, node, memory};
}

void WorkloadManager::Release(const Grant& grant) {
  if (!grant.valid()) return;
  PoolNodeState& s = state_[grant.pool][grant.node];
  --s.running;
  s.memory_inuse -= grant.memory;
  if (s.memory_inuse < 1e-9) s.memory_inuse = 0;
  DrainQueue(grant.node);
}

void WorkloadManager::DrainQueue(int node) {
  // Consider waiters in (priority desc, arrival asc) order. A waiter
  // that does not fit blocks its whole cascade chain: nothing behind it
  // may take from those pools, so a queued high-priority request only
  // ever waits for currently-running grants — bounded priority
  // inversion by construction.
  std::vector<Waiter*> order;
  for (const auto& waiter : queues_[node]) {
    if (!waiter->decided()) order.push_back(waiter.get());
  }
  std::stable_sort(order.begin(), order.end(),
                   [](const Waiter* a, const Waiter* b) {
                     if (a->priority != b->priority) {
                       return a->priority > b->priority;
                     }
                     return a->id < b->id;
                   });
  std::set<int> blocked;
  for (Waiter* w : order) {
    bool behind_blocked = false;
    for (int pool : chains_[w->pool]) {
      if (blocked.count(pool) > 0) {
        behind_blocked = true;
        break;
      }
    }
    if (behind_blocked) continue;
    int from = TryTake(w->pool, node, w->memory);
    if (from >= 0) {
      w->granted_from = from;
      w->cond->NotifyAll();
    } else {
      for (int pool : chains_[w->pool]) blocked.insert(pool);
    }
  }
}

void WorkloadManager::RemoveWaiter(const Waiter* waiter) {
  auto& queue = queues_[waiter->node];
  for (auto it = queue.begin(); it != queue.end(); ++it) {
    if (it->get() == waiter) {
      queue.erase(it);
      return;
    }
  }
}

void WorkloadManager::ReportSpill(const Grant& grant, double bytes) {
  obs::IncrCounter("wm.spills");
  obs::IncrCounter("wm.spill_bytes", bytes);
  if (!grant.valid()) return;
  PoolNodeState& s = state_[grant.origin][grant.node];
  ++s.spills;
  s.spill_bytes += bytes;
  obs::TraceEvent("wm", "spill",
                  {{"pool", pools_[grant.origin].name},
                   {"node", grant.node},
                   {"bytes", bytes}});
}

void WorkloadManager::OnNodeDown(int node) {
  for (const auto& waiter : queues_[node]) {
    if (waiter->decided()) continue;
    waiter->node_down = true;
    waiter->cond->NotifyAll();
  }
}

std::vector<WorkloadManager::PoolStatus> WorkloadManager::PoolStatusRows()
    const {
  std::vector<PoolStatus> rows;
  for (int node = 0; node < num_nodes_; ++node) {
    std::vector<int> queued(pools_.size(), 0);
    for (const auto& waiter : queues_[node]) {
      if (!waiter->decided()) ++queued[waiter->pool];
    }
    for (size_t p = 0; p < pools_.size(); ++p) {
      const PoolNodeState& s = state_[p][node];
      PoolStatus row;
      row.node = node;
      row.pool = pools_[p].name;
      row.priority = pools_[p].priority;
      row.max_concurrency = pools_[p].max_concurrency;
      row.memory_budget = pools_[p].memory_budget;
      row.memory_inuse = s.memory_inuse;
      row.running = s.running;
      row.queued = queued[p];
      row.admitted = s.admitted;
      row.borrowed = s.borrowed;
      row.timeouts = s.timeouts;
      row.rejected = s.rejected;
      row.spills = s.spills;
      row.spill_bytes = s.spill_bytes;
      row.queue_wait_seconds = s.queue_wait_seconds;
      rows.push_back(std::move(row));
    }
  }
  return rows;
}

std::vector<WorkloadManager::QueueEntry> WorkloadManager::QueueRows() const {
  std::vector<QueueEntry> rows;
  for (int node = 0; node < num_nodes_; ++node) {
    std::vector<const Waiter*> order;
    for (const auto& waiter : queues_[node]) {
      if (!waiter->decided()) order.push_back(waiter.get());
    }
    std::stable_sort(order.begin(), order.end(),
                     [](const Waiter* a, const Waiter* b) {
                       if (a->priority != b->priority) {
                         return a->priority > b->priority;
                       }
                       return a->id < b->id;
                     });
    int position = 0;
    for (const Waiter* w : order) {
      QueueEntry entry;
      entry.node = node;
      entry.pool = pools_[w->pool].name;
      entry.priority = w->priority;
      entry.position = position++;
      entry.memory_requested = w->memory;
      entry.queued_at = w->queued_at;
      rows.push_back(std::move(entry));
    }
  }
  return rows;
}

}  // namespace fabric::vertica::wm
