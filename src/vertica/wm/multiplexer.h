#ifndef FABRIC_VERTICA_WM_MULTIPLEXER_H_
#define FABRIC_VERTICA_WM_MULTIPLEXER_H_

// Session multiplexer: drives thousands of concurrent logical client
// sessions over a bounded set of sim processes ("lanes"). Every sim
// process is backed by a host thread, so modeling each client session
// as its own process caps the simulable concurrency at a few hundred;
// the multiplexer instead keeps logical sessions as schedule entries
// (start time, think time, per-step closures) and has each lane pull
// the earliest runnable step — a connection pool in the same sense as a
// JDBC-side one, with the per-session state living in the closures.
//
// Determinism: lanes are ordinary sim processes and every hand-off goes
// through the engine's (time, sequence) ordering, so a given schedule
// executes identically run-to-run.

#include <cstdint>
#include <functional>
#include <queue>
#include <string>
#include <vector>

#include "common/result.h"
#include "sim/engine.h"
#include "sim/waitable.h"

namespace fabric::vertica::wm {

class Multiplexer {
 public:
  struct Options {
    int lanes = 64;          // sim processes executing steps
    std::string name = "mux";
  };

  // One statement/job of a logical session. `session` is the id
  // AddSession returned; `step` counts from 0.
  using Step = std::function<Status(sim::Process& self, int session,
                                    int step)>;

  struct SessionSpec {
    double start = 0;   // virtual time the first step becomes ready
    double think = 0;   // pause between consecutive steps
    int steps = 1;
    Step body;
  };

  struct Stats {
    int sessions = 0;
    int64_t steps_run = 0;
    int64_t steps_failed = 0;
    // Peak number of logical sessions simultaneously open (started and
    // not yet finished/aborted).
    int peak_concurrent = 0;
  };

  Multiplexer(sim::Engine* engine, Options options);

  // Registers a logical session; returns its id. Call before Launch.
  int AddSession(SessionSpec spec);

  // Spawns the lanes. The engine's Run() (or the surrounding
  // simulation) then executes every session to completion. A session
  // whose step returns an error is aborted (remaining steps dropped)
  // and its status recorded.
  void Launch();

  // Blocks `self` until every session has finished or been aborted.
  // Call from a process that is not one of the lanes (e.g. the bench
  // driver) after Launch.
  Status Join(sim::Process& self);

  const Stats& stats() const { return stats_; }
  // Final status per session (OK until a step fails).
  const std::vector<Status>& session_status() const { return status_; }

 private:
  struct Entry {
    double ready = 0;
    int session = 0;
    int step = 0;
  };
  struct EntryLater {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.ready != b.ready) return a.ready > b.ready;
      if (a.session != b.session) return a.session > b.session;
      return a.step > b.step;
    }
  };

  void LaneBody(sim::Process& self);
  void UpdatePeak(double now);

  sim::Engine* engine_;
  Options options_;
  std::vector<SessionSpec> specs_;
  std::vector<Status> status_;
  std::priority_queue<Entry, std::vector<Entry>, EntryLater> ready_;
  sim::Condition work_;
  std::vector<double> sorted_starts_;  // computed at Launch
  int finished_ = 0;
  Stats stats_;
  bool launched_ = false;
};

}  // namespace fabric::vertica::wm

#endif  // FABRIC_VERTICA_WM_MULTIPLEXER_H_
