#include "vertica/database.h"

#include <limits>

#include "common/logging.h"
#include "common/string_util.h"
#include "obs/trace.h"
#include "storage/profile.h"
#include "vertica/session.h"
#include "vertica/udx_hll.h"

namespace fabric::vertica {

Database::Database(sim::Engine* engine, net::Network* network,
                   Options options)
    : engine_(engine), network_(network), options_(std::move(options)) {
  FABRIC_CHECK(options_.num_nodes > 0);
  hosts_.reserve(options_.num_nodes);
  for (int i = 0; i < options_.num_nodes; ++i) {
    hosts_.push_back(net::AddHost(network_, node_name(i),
                                  options_.cost.nic_bandwidth,
                                  options_.cost.nic_bandwidth,
                                  options_.cost.vertica_cores,
                                  options_.cost.disk_read_bandwidth));
  }
  node_ranges_ = EvenRingPartition(options_.num_nodes);
  active_sessions_.assign(options_.num_nodes, 0);
  node_states_.assign(options_.num_nodes, NodeState::kUp);
  node_down_epoch_.assign(options_.num_nodes, 0);
  node_incarnation_.assign(options_.num_nodes, 0);
  node_sessions_.resize(options_.num_nodes);
  state_changed_ = std::make_unique<sim::Condition>(engine_);
  if (options_.pool_concurrency > 0) {
    for (int i = 0; i < options_.num_nodes; ++i) {
      pool_slots_.push_back(std::make_unique<sim::Semaphore>(
          engine_, options_.pool_concurrency));
    }
  }
  udx_resolver_ = [this](const std::string& fn,
                         const std::vector<storage::Value>& args,
                         const std::map<std::string, storage::Value>&
                             parameters) -> Result<storage::Value> {
    auto it = functions_.find(ToUpper(fn));
    if (it == functions_.end()) {
      return NotFoundError(StrCat("unknown function '", fn, "'"));
    }
    return it->second(args, parameters);
  };
  aggregate_udx_resolver_ =
      [this](const std::string& fn) -> const sql::AggregateUdx* {
    auto it = aggregate_functions_.find(ToUpper(fn));
    return it == aggregate_functions_.end() ? nullptr : &it->second;
  };
  if (options_.workload.enabled()) {
    wm_ = std::make_unique<wm::WorkloadManager>(engine_, options_.workload,
                                                options_.num_nodes);
  }
  pipeline_compiler_.set_enabled(options_.compile_pipelines);
  RegisterHllFunctions(this);
  // SELECT DESIGN_PROPOSALS([budget_fraction[, max_proposals]]) runs the
  // database designer over the captured workload history; the proposals
  // land in v_monitor.design_proposals and the call returns a summary.
  RegisterScalarFunction(
      "DESIGN_PROPOSALS",
      [this](const std::vector<storage::Value>& args,
             const std::map<std::string, storage::Value>&)
          -> Result<storage::Value> {
        designer::Options defaults;
        double budget = defaults.budget_fraction;
        int max_proposals = defaults.max_proposals;
        if (!args.empty() && !args[0].is_null()) {
          FABRIC_ASSIGN_OR_RETURN(budget, args[0].AsDouble());
        }
        if (args.size() > 1 && !args[1].is_null()) {
          FABRIC_ASSIGN_OR_RETURN(double raw, args[1].AsDouble());
          max_proposals = static_cast<int>(raw);
        }
        FABRIC_ASSIGN_OR_RETURN(std::string summary,
                                RunDesigner(budget, max_proposals));
        return storage::Value::Varchar(std::move(summary));
      });
  tm_ = std::make_unique<TupleMover>(this, options_.tuple_mover);
}

int64_t Database::RecordQueryRequest(QueryRequest request) {
  request.request_id = next_query_request_id_++;
  request.started_at = engine_->now();
  query_requests_.push_back(std::move(request));
  while (query_requests_.size() > kQueryHistoryCap) {
    query_requests_.pop_front();
  }
  return query_requests_.back().request_id;
}

void Database::StampQueryDurations(int64_t from_id, double duration) {
  for (auto it = query_requests_.rbegin(); it != query_requests_.rend();
       ++it) {
    if (it->request_id < from_id) break;
    it->duration = duration;
  }
}

Result<std::string> Database::RunDesigner(double budget_fraction,
                                          int max_proposals) {
  if (budget_fraction < 0) {
    return InvalidArgumentError("designer budget fraction must be >= 0");
  }
  if (max_proposals < 0) {
    return InvalidArgumentError("designer max proposals must be >= 0");
  }
  // Primary-copy raw bytes per anchor: the designer sizes candidate
  // projections as width fractions of this.
  std::map<std::string, double> table_raw_bytes;
  for (const std::string& table : catalog_.TableNames()) {
    auto it = storage_.find(ToLower(table));
    if (it == storage_.end()) continue;
    double bytes = 0;
    for (const auto& store : it->second.per_node) {
      bytes += store->TotalRawBytes();
    }
    table_raw_bytes[ToLower(table)] = bytes;
  }
  designer::Options options;
  options.budget_fraction = budget_fraction;
  options.max_proposals = max_proposals;
  design_proposals_ =
      designer::Propose(catalog_, query_requests_, table_raw_bytes, options);
  double benefit = 0;
  for (const designer::Proposal& p : design_proposals_) {
    benefit += p.benefit;
  }
  obs::IncrCounter("vertica.designer_runs");
  obs::TraceEvent("vertica", "designer.run",
                  {{"proposals", design_proposals_.size()},
                   {"history", query_requests_.size()}});
  char benefit_buf[32];
  std::snprintf(benefit_buf, sizeof(benefit_buf), "%.4f", benefit);
  return StrCat(design_proposals_.size(), " proposals (replayed ",
                query_requests_.size(), " requests, total benefit ",
                benefit_buf, ")");
}

Database::~Database() = default;

std::string Database::node_name(int node) const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "v_fabric_node%04d", node + 1);
  return buf;
}

std::string Database::node_address(int node) const {
  return StrCat("10.20.0.", node + 1);
}

Result<int> Database::ResolveNode(std::string_view name_or_address) const {
  for (int i = 0; i < num_nodes(); ++i) {
    if (EqualsIgnoreCase(node_name(i), name_or_address) ||
        node_address(i) == name_or_address) {
      return i;
    }
  }
  return NotFoundError(
      StrCat("no Vertica node '", name_or_address, "'"));
}

void Database::RegisterScalarFunction(const std::string& name,
                                      ScalarFn fn) {
  functions_[ToUpper(name)] = std::move(fn);
}

bool Database::HasScalarFunction(const std::string& name) const {
  return functions_.count(ToUpper(name)) > 0;
}

void Database::RegisterAggregateFunction(const std::string& name,
                                         sql::AggregateUdx udx) {
  aggregate_functions_[ToUpper(name)] = std::move(udx);
}

bool Database::HasAggregateFunction(const std::string& name) const {
  return aggregate_functions_.count(ToUpper(name)) > 0;
}

Result<std::unique_ptr<Session>> Database::Connect(sim::Process& self,
                                                   int node,
                                                   const net::Host* client) {
  if (node < 0 || node >= num_nodes()) {
    return InvalidArgumentError(StrCat("no node ", node));
  }
  if (cluster_down_) {
    return UnavailableError("cluster is down");
  }
  if (!node_up(node)) {
    return UnavailableError(StrCat(node_name(node), " is ",
                                   NodeStateName(node_states_[node])));
  }
  if (active_sessions_[node] >= options_.max_client_sessions) {
    obs::IncrCounter("vertica.session_rejects");
    return ResourceExhaustedError(
        StrCat(kMaxClientSessionsToken, ": limit ",
               options_.max_client_sessions, " reached on ",
               node_name(node)));
  }
  ++active_sessions_[node];
  // Connection setup: handshake round trip plus session create CPU.
  Status status = self.Sleep(options_.cost.connection_setup);
  if (status.ok()) {
    status = net::RunCpu(self, network_, hosts_[node],
                         options_.cost.statement_overhead_cpu);
  }
  // The node may have died during the handshake.
  if (status.ok() && !node_up(node)) {
    status = UnavailableError(StrCat(node_name(node), " is ",
                                     NodeStateName(node_states_[node])));
  }
  if (!status.ok()) {
    --active_sessions_[node];
    return status;
  }
  auto session = std::unique_ptr<Session>(new Session(this, node, client));
  node_sessions_[node].insert(session.get());
  return session;
}

void Database::UnregisterSession(int node, Session* session) {
  --active_sessions_[node];
  node_sessions_[node].erase(session);
}

double Database::NodeCpuUtilization(int node) const {
  const net::Host& host = hosts_[node];
  if (!host.has_cpu()) return 0;
  double rate = network_->LinkCurrentRate(host.cpu);
  return rate / network_->link_capacity(host.cpu);
}

double Database::NodeExtEgressRate(int node) const {
  return network_->LinkCurrentRate(hosts_[node].ext_egress);
}

Result<Database::TableStorage*> Database::GetStorage(
    const std::string& table) {
  auto it = storage_.find(ToLower(table));
  if (it == storage_.end()) {
    return NotFoundError(StrCat("no storage for table '", table, "'"));
  }
  return &it->second;
}

Status Database::CreateTableWithStorage(TableDef def) {
  std::string key = ToLower(def.name);
  storage::Schema schema = def.schema;
  bool segmented = !def.segmentation.unsegmented();
  FABRIC_RETURN_IF_ERROR(catalog_.CreateTable(std::move(def)));
  TableStorage table_storage;
  for (int i = 0; i < num_nodes(); ++i) {
    table_storage.per_node.push_back(
        std::make_unique<storage::SegmentStore>(schema));
  }
  // k=1 buddy projection: segmented tables get a second copy of every
  // segment on the ring-successor node. Unsegmented tables are already
  // replicated everywhere, and a single-node cluster has no buddy.
  if (segmented && num_nodes() > 1) {
    for (int i = 0; i < num_nodes(); ++i) {
      table_storage.buddy.push_back(
          std::make_unique<storage::SegmentStore>(schema));
    }
  }
  storage_.emplace(key, std::move(table_storage));
  return Status::OK();
}

Status Database::DropTableWithStorage(const std::string& name) {
  // Catalog drop cascades to the table's projections; the nested
  // SegmentSets die with the TableStorage entry.
  FABRIC_RETURN_IF_ERROR(catalog_.DropTable(name));
  storage_.erase(ToLower(name));
  return Status::OK();
}

Status Database::CreateProjectionWithStorage(ProjectionDef def) {
  std::string key = ToLower(def.name);
  std::string anchor_key = ToLower(def.anchor);
  storage::Schema schema = def.schema;
  storage::PhysicalDesign design = def.Design();
  bool segmented = !def.segmentation.unsegmented();
  FABRIC_RETURN_IF_ERROR(catalog_.CreateProjection(std::move(def)));
  auto it = storage_.find(anchor_key);
  FABRIC_CHECK(it != storage_.end()) << "anchor storage missing";
  SegmentSet set;
  for (int i = 0; i < num_nodes(); ++i) {
    set.per_node.push_back(
        std::make_unique<storage::SegmentStore>(schema, design));
  }
  if (segmented && num_nodes() > 1) {
    for (int i = 0; i < num_nodes(); ++i) {
      set.buddy.push_back(
          std::make_unique<storage::SegmentStore>(schema, design));
    }
  }
  it->second.projections.emplace(key, std::move(set));
  return Status::OK();
}

Status Database::DropProjectionWithStorage(const std::string& name) {
  auto proj = catalog_.GetProjection(name);
  FABRIC_RETURN_IF_ERROR(proj.status());
  std::string anchor_key = ToLower((*proj)->anchor);
  FABRIC_RETURN_IF_ERROR(catalog_.DropProjection(name));
  auto it = storage_.find(anchor_key);
  if (it != storage_.end()) it->second.projections.erase(ToLower(name));
  return Status::OK();
}

Result<Database::SegmentSet*> Database::GetProjectionStorage(
    const std::string& name) {
  auto proj = catalog_.GetProjection(name);
  FABRIC_RETURN_IF_ERROR(proj.status());
  auto it = storage_.find(ToLower((*proj)->anchor));
  if (it == storage_.end()) {
    return NotFoundError(
        StrCat("no storage for projection '", name, "'"));
  }
  auto set_it = it->second.projections.find(ToLower(name));
  if (set_it == it->second.projections.end()) {
    return NotFoundError(
        StrCat("no storage for projection '", name, "'"));
  }
  return &set_it->second;
}

Status Database::RenameTableWithStorage(const std::string& from,
                                        const std::string& to,
                                        bool replace) {
  // The whole swap happens in one engine step, so it is atomic with
  // respect to every other simulated actor (Vertica's global catalog
  // commit).
  if (replace && catalog_.HasTable(to)) {
    FABRIC_RETURN_IF_ERROR(catalog_.GetTable(from).status());
    FABRIC_RETURN_IF_ERROR(DropTableWithStorage(to));
  }
  FABRIC_RETURN_IF_ERROR(catalog_.RenameTable(from, to));
  auto it = storage_.find(ToLower(from));
  FABRIC_CHECK(it != storage_.end()) << "storage missing for " << from;
  TableStorage moved = std::move(it->second);
  storage_.erase(it);
  storage_.emplace(ToLower(to), std::move(moved));
  return Status::OK();
}

int Database::OwnerNode(const TableDef& def,
                        const storage::Row& row) const {
  if (def.segmentation.unsegmented()) return -1;
  uint64_t h =
      storage::RowSegmentationHash(row, def.segmentation.columns);
  return RingSegmentOf(h, num_nodes());
}

int Database::OwnerNode(const ProjectionDef& def,
                        const storage::Row& row) const {
  if (def.segmentation.unsegmented()) return -1;
  uint64_t h =
      storage::RowSegmentationHash(row, def.segmentation.columns);
  return RingSegmentOf(h, num_nodes());
}

Status Database::WriteProjectionRows(sim::Process& self,
                                     const TableDef& def,
                                     const std::vector<storage::Row>& rows,
                                     storage::TxnId txn, int source_host,
                                     bool direct, double scale) {
  if (rows.empty()) return Status::OK();
  std::vector<const ProjectionDef*> projs =
      catalog_.ProjectionsOf(def.name);
  if (projs.empty()) return Status::OK();
  auto storage_it = storage_.find(ToLower(def.name));
  FABRIC_CHECK(storage_it != storage_.end()) << "anchor storage missing";
  for (const ProjectionDef* proj : projs) {
    auto set_it = storage_it->second.projections.find(ToLower(proj->name));
    FABRIC_CHECK(set_it != storage_it->second.projections.end())
        << "projection storage missing for " << proj->name;
    SegmentSet& set = set_it->second;
    // Project anchor-width rows to the projection's column subset and
    // route them by the projection's own segmentation.
    std::vector<std::vector<storage::Row>> per_node(num_nodes());
    for (const storage::Row& row : rows) {
      storage::Row prow;
      prow.reserve(proj->columns.size());
      for (int c : proj->columns) prow.push_back(row[c]);
      int owner = OwnerNode(*proj, prow);
      if (owner < 0) {
        for (int n = 0; n < num_nodes(); ++n) per_node[n].push_back(prow);
      } else {
        per_node[owner].push_back(std::move(prow));
      }
    }
    bool replicated = proj->segmentation.unsegmented();
    for (int n = 0; n < num_nodes(); ++n) {
      if (per_node[n].empty()) continue;
      std::vector<SegmentCopy> copies;
      if (replicated) {
        if (!node_up(n)) continue;
        copies.push_back(SegmentCopy{set.per_node[n].get(), n});
      } else {
        FABRIC_ASSIGN_OR_RETURN(copies, WriteCopies(&set, n));
      }
      double raw_bytes =
          storage::ProfileRows(per_node[n]).raw_bytes * scale;
      for (size_t c = 0; c < copies.size(); ++c) {
        const SegmentCopy& copy = copies[c];
        if (copy.host != source_host) {
          FABRIC_RETURN_IF_ERROR(network_->Transfer(
              self,
              {hosts_[source_host].int_egress,
               hosts_[copy.host].int_ingress},
              raw_bytes));
        }
        // Re-sorting and re-encoding into the projection's design.
        FABRIC_RETURN_IF_ERROR(
            net::RunCpu(self, network_, hosts_[copy.host],
                        raw_bytes * options_.cost.scan_cpu_per_byte));
        std::vector<storage::Row> batch = c + 1 < copies.size()
                                              ? per_node[n]
                                              : std::move(per_node[n]);
        if (direct) {
          FABRIC_RETURN_IF_ERROR(
              copy.store->InsertPendingDirect(txn, std::move(batch)));
        } else {
          FABRIC_RETURN_IF_ERROR(
              tm_->AdmitWos(self, def.name, copy.store, copy.host));
          FABRIC_RETURN_IF_ERROR(
              copy.store->InsertPending(txn, std::move(batch)));
        }
      }
    }
  }
  return Status::OK();
}

Status Database::DeleteProjectionRows(
    sim::Process& self, const TableDef& def,
    const std::vector<storage::Row>& victims, storage::TxnId txn,
    storage::Epoch as_of, double scale) {
  if (victims.empty()) return Status::OK();
  std::vector<const ProjectionDef*> projs =
      catalog_.ProjectionsOf(def.name);
  if (projs.empty()) return Status::OK();
  auto storage_it = storage_.find(ToLower(def.name));
  FABRIC_CHECK(storage_it != storage_.end()) << "anchor storage missing";
  for (const ProjectionDef* proj : projs) {
    auto set_it = storage_it->second.projections.find(ToLower(proj->name));
    FABRIC_CHECK(set_it != storage_it->second.projections.end())
        << "projection storage missing for " << proj->name;
    SegmentSet& set = set_it->second;
    std::vector<std::vector<storage::Row>> per_node(num_nodes());
    std::vector<storage::Row> all_projected;  // replicated layouts
    bool replicated = proj->segmentation.unsegmented();
    for (const storage::Row& row : victims) {
      storage::Row prow;
      prow.reserve(proj->columns.size());
      for (int c : proj->columns) prow.push_back(row[c]);
      if (replicated) {
        all_projected.push_back(std::move(prow));
      } else {
        per_node[OwnerNode(*proj, prow)].push_back(std::move(prow));
      }
    }
    if (replicated) {
      double raw_bytes =
          storage::ProfileRows(all_projected).raw_bytes * scale;
      for (int n = 0; n < num_nodes(); ++n) {
        if (!node_up(n)) continue;
        FABRIC_RETURN_IF_ERROR(
            net::RunCpu(self, network_, hosts_[n],
                        raw_bytes * options_.cost.scan_cpu_per_byte));
        FABRIC_ASSIGN_OR_RETURN(
            int64_t marked, set.per_node[n]->MarkDeletedPendingByContent(
                                txn, as_of, all_projected));
        FABRIC_CHECK(marked ==
                     static_cast<int64_t>(all_projected.size()))
            << "projection " << proj->name << " missing delete victims";
      }
      continue;
    }
    for (int n = 0; n < num_nodes(); ++n) {
      if (per_node[n].empty()) continue;
      FABRIC_ASSIGN_OR_RETURN(std::vector<SegmentCopy> copies,
                              WriteCopies(&set, n));
      double raw_bytes =
          storage::ProfileRows(per_node[n]).raw_bytes * scale;
      for (const SegmentCopy& copy : copies) {
        FABRIC_RETURN_IF_ERROR(
            net::RunCpu(self, network_, hosts_[copy.host],
                        raw_bytes * options_.cost.scan_cpu_per_byte));
        FABRIC_ASSIGN_OR_RETURN(
            int64_t marked, copy.store->MarkDeletedPendingByContent(
                                txn, as_of, per_node[n]));
        FABRIC_CHECK(marked == static_cast<int64_t>(per_node[n].size()))
            << "projection " << proj->name << " missing delete victims";
      }
    }
  }
  return Status::OK();
}

storage::TxnId Database::BeginTxnInternal() {
  storage::TxnId txn = next_txn_++;
  TxnState state;
  // The open transaction reads at its begin epoch; pin it so the AHM (and
  // with it the purge) cannot pass the snapshot while the txn runs.
  state.snapshot_epoch = epoch_;
  PinEpoch(state.snapshot_epoch);
  txns_.emplace(txn, std::move(state));
  obs::TraceEvent("vertica", "txn.begin", {{"txn", txn}});
  obs::IncrCounter("vertica.txns_begun");
  return txn;
}

Status Database::LockTableX(sim::Process& self, storage::TxnId txn,
                            const std::string& table) {
  std::string key = ToLower(table);
  TableLock& lock = locks_[key];
  if (lock.released == nullptr) {
    lock.released = std::make_unique<sim::Condition>(engine_);
  }
  if (lock.x_owner == txn) return Status::OK();
  // X is granted once no other txn holds any lock on the table (an
  // insert lock held by this txn upgrades).
  FABRIC_RETURN_IF_ERROR(lock.released->WaitUntil(self, [&lock, txn] {
    if (lock.x_owner != 0 && lock.x_owner != txn) return false;
    for (storage::TxnId holder : lock.insert_owners) {
      if (holder != txn) return false;
    }
    return true;
  }));
  lock.x_owner = txn;
  auto it = txns_.find(txn);
  FABRIC_CHECK(it != txns_.end()) << "lock by unknown txn";
  it->second.locked_tables.insert(key);
  return Status::OK();
}

Status Database::LockTableI(sim::Process& self, storage::TxnId txn,
                            const std::string& table) {
  std::string key = ToLower(table);
  TableLock& lock = locks_[key];
  if (lock.released == nullptr) {
    lock.released = std::make_unique<sim::Condition>(engine_);
  }
  if (lock.x_owner == txn || lock.insert_owners.count(txn) > 0) {
    return Status::OK();
  }
  FABRIC_RETURN_IF_ERROR(lock.released->WaitUntil(
      self, [&lock] { return lock.x_owner == 0; }));
  lock.insert_owners.insert(txn);
  auto it = txns_.find(txn);
  FABRIC_CHECK(it != txns_.end()) << "lock by unknown txn";
  it->second.locked_tables.insert(key);
  return Status::OK();
}

Status Database::WaitTablesIdle(sim::Process& self, storage::TxnId txn,
                                const std::vector<std::string>& tables) {
  auto idle = [this, txn](const std::string& key) {
    auto it = locks_.find(key);
    if (it == locks_.end()) return true;
    const TableLock& lock = it->second;
    if (lock.x_owner != 0 && lock.x_owner != txn) return false;
    for (storage::TxnId holder : lock.insert_owners) {
      if (holder != txn) return false;
    }
    return true;
  };
  // Waiting on one table can let another re-lock, so loop until the
  // whole set is observed idle inside a single engine step.
  for (;;) {
    bool all_idle = true;
    for (const std::string& table : tables) {
      std::string key = ToLower(table);
      if (idle(key)) continue;
      all_idle = false;
      TableLock& lock = locks_[key];
      if (lock.released == nullptr) {
        lock.released = std::make_unique<sim::Condition>(engine_);
      }
      FABRIC_RETURN_IF_ERROR(lock.released->WaitUntil(
          self, [&idle, &key] { return idle(key); }));
      break;
    }
    if (all_idle) return Status::OK();
  }
}

void Database::TouchTable(storage::TxnId txn, const std::string& table) {
  auto it = txns_.find(txn);
  FABRIC_CHECK(it != txns_.end()) << "touch by unknown txn";
  it->second.touched_tables.insert(ToLower(table));
}

Status Database::CommitTxnInternal(sim::Process& self,
                                   storage::TxnId txn) {
  auto it = txns_.find(txn);
  if (it == txns_.end()) {
    return FailedPreconditionError("commit of unknown txn");
  }
  // Commit latency: group-commit style fixed cost.
  FABRIC_RETURN_IF_ERROR(self.Sleep(options_.cost.commit_overhead));
  storage::Epoch commit_epoch = ++epoch_;
  ++epoch_commits_[commit_epoch];
  obs::TraceEvent("vertica", "epoch.advance", {{"epoch", commit_epoch}});
  obs::TraceEvent("vertica", "txn.commit",
                  {{"txn", txn}, {"epoch", commit_epoch}});
  obs::IncrCounter("vertica.txns_committed");
  for (const std::string& table : it->second.touched_tables) {
    auto storage_it = storage_.find(table);
    if (storage_it == storage_.end()) continue;  // dropped mid-txn
    // All physical layouts — super projection and every named projection
    // — commit at the same epoch, in lockstep.
    for (auto& store : storage_it->second.per_node) {
      store->CommitTxn(txn, commit_epoch);
    }
    for (auto& store : storage_it->second.buddy) {
      store->CommitTxn(txn, commit_epoch);
    }
    for (auto& [proj_name, set] : storage_it->second.projections) {
      for (auto& store : set.per_node) store->CommitTxn(txn, commit_epoch);
      for (auto& store : set.buddy) store->CommitTxn(txn, commit_epoch);
    }
  }
  for (const std::string& table : it->second.locked_tables) {
    TableLock& lock = locks_[table];
    if (lock.x_owner == txn) lock.x_owner = 0;
    lock.insert_owners.erase(txn);
    lock.released->NotifyAll();
  }
  UnpinEpoch(it->second.snapshot_epoch);
  txns_.erase(it);
  // The commit created drainable WOS batches / ROS containers and
  // advanced the epoch: arm the Tuple Mover's background ticks.
  tm_->NotifyCommit();
  return Status::OK();
}

void Database::AbortTxnInternal(storage::TxnId txn) {
  auto it = txns_.find(txn);
  if (it == txns_.end()) return;
  obs::TraceEvent("vertica", "txn.abort", {{"txn", txn}});
  obs::IncrCounter("vertica.txns_aborted");
  for (const std::string& table : it->second.touched_tables) {
    auto storage_it = storage_.find(table);
    if (storage_it == storage_.end()) continue;
    for (auto& store : storage_it->second.per_node) {
      store->AbortTxn(txn);
    }
    for (auto& store : storage_it->second.buddy) {
      store->AbortTxn(txn);
    }
    for (auto& [proj_name, set] : storage_it->second.projections) {
      for (auto& store : set.per_node) store->AbortTxn(txn);
      for (auto& store : set.buddy) store->AbortTxn(txn);
    }
  }
  for (const std::string& table : it->second.locked_tables) {
    TableLock& lock = locks_[table];
    if (lock.x_owner == txn) lock.x_owner = 0;
    lock.insert_owners.erase(txn);
    lock.released->NotifyAll();
  }
  UnpinEpoch(it->second.snapshot_epoch);
  txns_.erase(it);
}

std::vector<Database::HostedStore> Database::HostedStores(int node) {
  std::vector<HostedStore> hosted;
  int prev = (node - 1 + num_nodes()) % num_nodes();
  for (auto& [name, table_storage] : storage_) {
    auto add_set = [&](SegmentSet& set, const std::string& projection) {
      hosted.push_back(HostedStore{name, projection,
                                   set.per_node[node].get(), node,
                                   /*is_buddy=*/false});
      if (!set.buddy.empty()) {
        // buddy[s] lives on the ring successor of s, so node hosts the
        // buddy copy of its predecessor's segment.
        hosted.push_back(HostedStore{name, projection,
                                     set.buddy[prev].get(), prev,
                                     /*is_buddy=*/true});
      }
    };
    add_set(table_storage, "");
    // The Tuple Mover (and storage telemetry) maintains every projection
    // of a table alongside its super projection.
    for (auto& [proj_name, set] : table_storage.projections) {
      add_set(set, proj_name);
    }
  }
  return hosted;
}

void Database::UnpinEpoch(storage::Epoch epoch) {
  auto it = pinned_epochs_.find(epoch);
  FABRIC_CHECK(it != pinned_epochs_.end()) << "unpin of unpinned epoch";
  if (--it->second == 0) pinned_epochs_.erase(it);
}

storage::Epoch Database::MinPinnedEpoch() const {
  if (pinned_epochs_.empty()) {
    return std::numeric_limits<storage::Epoch>::max();
  }
  return pinned_epochs_.begin()->first;
}

storage::Epoch Database::MinNodeDownEpoch() const {
  storage::Epoch min = std::numeric_limits<storage::Epoch>::max();
  for (int n = 0; n < num_nodes(); ++n) {
    if (node_states_[n] != NodeState::kUp) {
      min = std::min(min, node_down_epoch_[n]);
    }
  }
  return min;
}

void Database::TrimEpochBookkeeping(storage::Epoch ahm) {
  epoch_commits_.erase(epoch_commits_.begin(),
                       epoch_commits_.lower_bound(ahm));
}

int64_t Database::TotalWosBatches() const {
  int64_t total = 0;
  for (const auto& [name, table_storage] : storage_) {
    for (const auto& store : table_storage.per_node) {
      total += store->num_wos_batches();
    }
    for (const auto& store : table_storage.buddy) {
      total += store->num_wos_batches();
    }
    for (const auto& [proj_name, set] : table_storage.projections) {
      for (const auto& store : set.per_node) {
        total += store->num_wos_batches();
      }
      for (const auto& store : set.buddy) {
        total += store->num_wos_batches();
      }
    }
  }
  return total;
}

Result<Database::SegmentCopy> Database::ReadCopy(SegmentSet* storage,
                                                 int segment) const {
  if (node_up(segment)) {
    return SegmentCopy{storage->per_node[segment].get(), segment};
  }
  int buddy = buddy_node(segment);
  if (!storage->buddy.empty() && node_up(buddy)) {
    return SegmentCopy{storage->buddy[segment].get(), buddy};
  }
  return UnavailableError(
      StrCat("both copies of segment ", segment, " are unavailable"));
}

Result<std::vector<Database::SegmentCopy>> Database::WriteCopies(
    SegmentSet* storage, int segment) const {
  std::vector<SegmentCopy> copies;
  // Only UP copies take writes; a RECOVERING node's copies are caught up
  // wholesale by the final recovery clone, so routing writes to them
  // would double-apply.
  if (node_up(segment)) {
    copies.push_back(SegmentCopy{storage->per_node[segment].get(), segment});
  }
  if (!storage->buddy.empty()) {
    int buddy = buddy_node(segment);
    if (node_up(buddy)) {
      copies.push_back(SegmentCopy{storage->buddy[segment].get(), buddy});
    }
  }
  if (copies.empty()) {
    return UnavailableError(
        StrCat("no live copy of segment ", segment, " to write"));
  }
  return copies;
}

Status Database::KillNode(int node) {
  if (node < 0 || node >= num_nodes()) {
    return InvalidArgumentError(StrCat("no node ", node));
  }
  if (node_states_[node] == NodeState::kDown) return Status::OK();
  bool was_up = node_states_[node] == NodeState::kUp;
  node_states_[node] = NodeState::kDown;
  ++node_incarnation_[node];
  // A node killed while RECOVERING keeps its original down epoch: it
  // never finished catching up, so its copies are still stale from the
  // first crash.
  if (was_up) node_down_epoch_[node] = epoch_;
  obs::TraceEvent("ksafety", "node.down",
                  {{"node", node},
                   {"node_name", node_name(node)},
                   {"epoch", epoch_}});
  obs::IncrCounter("ksafety.node_kills");
  // Every session attached to the dead node is broken; the open txn (if
  // any) aborts lazily when the in-flight statement unwinds or the client
  // discards the session.
  for (Session* session : node_sessions_[node]) {
    session->MarkBroken();
  }
  // k=1 shutdown rule: losing both copies of any segment (two ring-
  // adjacent nodes non-UP, or any loss on a single-node cluster) is
  // unrecoverable — Vertica shuts the whole cluster down to protect
  // consistency.
  bool shutdown = num_nodes() == 1;
  for (int s = 0; s < num_nodes() && !shutdown; ++s) {
    if (node_states_[s] != NodeState::kUp &&
        node_states_[buddy_node(s)] != NodeState::kUp) {
      shutdown = true;
    }
  }
  if (shutdown && !cluster_down_) {
    cluster_down_ = true;
    obs::TraceEvent("ksafety", "cluster.shutdown",
                    {{"trigger_node", node}, {"epoch", epoch_}});
    obs::IncrCounter("ksafety.cluster_shutdowns");
    for (int n = 0; n < num_nodes(); ++n) {
      node_states_[n] = NodeState::kDown;
      ++node_incarnation_[n];
      for (Session* session : node_sessions_[n]) {
        session->MarkBroken();
      }
    }
  }
  // Requests queued on the dead node's pools fail with UNAVAILABLE.
  if (wm_ != nullptr) {
    wm_->OnNodeDown(node);
    if (cluster_down_) {
      for (int n = 0; n < num_nodes(); ++n) wm_->OnNodeDown(n);
    }
  }
  state_changed_->NotifyAll();
  // Wake writers stalled on WOS backpressure against the dead node and
  // let the Tuple Mover drop it from its rotation.
  tm_->NotifyTopology();
  return Status::OK();
}

Status Database::RestartNode(int node) {
  if (node < 0 || node >= num_nodes()) {
    return InvalidArgumentError(StrCat("no node ", node));
  }
  if (cluster_down_) {
    return FailedPreconditionError(
        "cluster is down; no surviving copy to recover from");
  }
  if (node_states_[node] != NodeState::kDown) {
    return FailedPreconditionError(StrCat(
        node_name(node), " is ", NodeStateName(node_states_[node])));
  }
  node_states_[node] = NodeState::kRecovering;
  obs::TraceEvent("ksafety", "node.recovering",
                  {{"node", node},
                   {"node_name", node_name(node)},
                   {"down_epoch", node_down_epoch_[node]},
                   {"epoch", epoch_}});
  obs::IncrCounter("ksafety.node_restarts");
  state_changed_->NotifyAll();
  uint64_t incarnation = node_incarnation_[node];
  engine_->Spawn(StrCat("recovery:n", node),
                 [this, node, incarnation](sim::Process& self) {
                   RunRecovery(self, node, incarnation);
                 });
  return Status::OK();
}

void Database::RunRecovery(sim::Process& self, int node,
                           uint64_t incarnation) {
  uint64_t span = obs::TraceBegin(
      "ksafety", "recovery.transfer",
      {{"node", node}, {"down_epoch", node_down_epoch_[node]}});
  auto abandoned = [&] {
    return node_incarnation_[node] != incarnation ||
           node_states_[node] != NodeState::kRecovering;
  };
  auto abandon = [&] {
    obs::TraceEnd(span, "ksafety", "recovery.transfer",
                  {{"node", node}, {"ok", false}});
    obs::TraceEvent("ksafety", "recovery.abandoned", {{"node", node}});
    obs::IncrCounter("ksafety.recoveries_abandoned");
  };

  // Phase 1: pull the delta each hosted copy missed since the node went
  // down, from the surviving copy, over the internal fabric. Sources and
  // sizes are snapshotted up front; virtual time passes during the
  // transfers.
  struct Pull {
    int src = -1;       // source node (its int_egress feeds our ingress)
    double bytes = 0;   // cost-scaled raw bytes to move
  };
  storage::Epoch down_epoch = node_down_epoch_[node];
  int prev = (node - 1 + num_nodes()) % num_nodes();
  std::vector<Pull> pulls;
  // Recovery pulls deltas per projection: the super projection and every
  // named projection of a table each catch up from their own surviving
  // copy (a projection's buddy may be a different node's copy than the
  // anchor's, since each projection segments the ring on its own keys).
  auto plan_pulls = [&](SegmentSet& set, double scale) {
    if (!set.buddy.empty()) {
      // Primary copy of segment `node` recovers from its buddy; the buddy
      // copy of segment `prev` recovers from that segment's primary.
      pulls.push_back(Pull{
          buddy_node(node), set.buddy[node]->RawBytesSince(down_epoch) *
                                scale});
      pulls.push_back(Pull{
          prev, set.per_node[prev]->RawBytesSince(down_epoch) * scale});
    } else {
      // Replicated layout: any UP replica serves as the source.
      for (int m = 0; m < num_nodes(); ++m) {
        if (m == node || !node_up(m)) continue;
        pulls.push_back(
            Pull{m, set.per_node[m]->RawBytesSince(down_epoch) * scale});
        break;
      }
    }
  };
  for (auto& [name, table_storage] : storage_) {
    double scale = EffectiveScale(name);
    plan_pulls(table_storage, scale);
    for (auto& [proj_name, set] : table_storage.projections) {
      plan_pulls(set, scale);
    }
  }
  double total_bytes = 0;
  for (const Pull& pull : pulls) {
    if (pull.src < 0 || pull.bytes <= 0) continue;
    Status status = network_->Transfer(
        self, {hosts_[pull.src].int_egress, hosts_[node].int_ingress},
        pull.bytes);
    if (status.ok()) {
      // Re-sorting and re-encoding the received delta on the joiner.
      status = net::RunCpu(self, network_, hosts_[node],
                           pull.bytes * options_.cost.scan_cpu_per_byte);
    }
    if (!status.ok() || abandoned()) {
      abandon();
      return;
    }
    total_bytes += pull.bytes;
  }
  if (abandoned()) {
    abandon();
    return;
  }

  // Phase 2: atomic catch-up. Clone every hosted store from its surviving
  // copy in one engine step — writes that landed during the transfers are
  // included, and nothing can interleave before the node flips to UP.
  // Each projection clones independently; afterwards every layout's
  // copies agree (ContentFingerprint matches projection by projection).
  auto clone_set = [&](SegmentSet& set) -> bool {
    if (!set.buddy.empty()) {
      if (!node_up(buddy_node(node)) || !node_up(prev)) return false;
      set.per_node[node]->CopyContentsFrom(*set.buddy[node]);
      set.buddy[prev]->CopyContentsFrom(*set.per_node[prev]);
      return true;
    }
    int src = -1;
    for (int m = 0; m < num_nodes(); ++m) {
      if (m != node && node_up(m)) {
        src = m;
        break;
      }
    }
    if (src < 0) return false;
    set.per_node[node]->CopyContentsFrom(*set.per_node[src]);
    return true;
  };
  for (auto& [name, table_storage] : storage_) {
    if (!clone_set(table_storage)) {
      abandon();
      return;
    }
    for (auto& [proj_name, set] : table_storage.projections) {
      if (!clone_set(set)) {
        abandon();
        return;
      }
    }
  }
  node_states_[node] = NodeState::kUp;
  node_down_epoch_[node] = 0;
  obs::TraceEnd(span, "ksafety", "recovery.transfer",
                {{"node", node}, {"bytes", total_bytes}, {"ok", true}});
  obs::TraceEvent("ksafety", "node.up",
                  {{"node", node},
                   {"node_name", node_name(node)},
                   {"epoch", epoch_}});
  obs::IncrCounter("ksafety.recoveries");
  obs::IncrCounter("ksafety.recovery_bytes", total_bytes);
  state_changed_->NotifyAll();
  // The node is UP again: resume Tuple Mover passes over its stores and
  // recompute the AHM (its down-epoch no longer bounds history).
  tm_->NotifyTopology();
}

Status Database::WaitForNodeState(sim::Process& self, int node,
                                  NodeState state) {
  if (node < 0 || node >= num_nodes()) {
    return InvalidArgumentError(StrCat("no node ", node));
  }
  return state_changed_->WaitUntil(self, [this, node, state] {
    return node_states_[node] == state;
  });
}

Status Database::PoolAdmit(sim::Process& self, int node) {
  // The workload manager supersedes the flat pool; Session::Execute
  // already admitted this statement through its named pool.
  if (wm_ != nullptr) return self.CheckAlive();
  if (pool_slots_.empty()) return self.CheckAlive();
  return pool_slots_[node]->Acquire(self);
}

void Database::PoolRelease(int node) {
  if (wm_ != nullptr) return;
  if (pool_slots_.empty()) return;
  pool_slots_[node]->Release();
}

bool IsMaxClientSessionsError(const Status& status) {
  return status.code() == StatusCode::kResourceExhausted &&
         StartsWith(std::string(status.message()), kMaxClientSessionsToken);
}

}  // namespace fabric::vertica
