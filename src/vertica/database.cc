#include "vertica/database.h"

#include "common/logging.h"
#include "common/string_util.h"
#include "obs/trace.h"
#include "vertica/session.h"

namespace fabric::vertica {

Database::Database(sim::Engine* engine, net::Network* network,
                   Options options)
    : engine_(engine), network_(network), options_(std::move(options)) {
  FABRIC_CHECK(options_.num_nodes > 0);
  hosts_.reserve(options_.num_nodes);
  for (int i = 0; i < options_.num_nodes; ++i) {
    hosts_.push_back(net::AddHost(network_, node_name(i),
                                  options_.cost.nic_bandwidth,
                                  options_.cost.nic_bandwidth,
                                  options_.cost.vertica_cores,
                                  options_.cost.disk_read_bandwidth));
  }
  node_ranges_ = EvenRingPartition(options_.num_nodes);
  active_sessions_.assign(options_.num_nodes, 0);
  if (options_.pool_concurrency > 0) {
    for (int i = 0; i < options_.num_nodes; ++i) {
      pool_slots_.push_back(std::make_unique<sim::Semaphore>(
          engine_, options_.pool_concurrency));
    }
  }
  udx_resolver_ = [this](const std::string& fn,
                         const std::vector<storage::Value>& args,
                         const std::map<std::string, storage::Value>&
                             parameters) -> Result<storage::Value> {
    auto it = functions_.find(ToUpper(fn));
    if (it == functions_.end()) {
      return NotFoundError(StrCat("unknown function '", fn, "'"));
    }
    return it->second(args, parameters);
  };
}

Database::~Database() = default;

std::string Database::node_name(int node) const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "v_fabric_node%04d", node + 1);
  return buf;
}

std::string Database::node_address(int node) const {
  return StrCat("10.20.0.", node + 1);
}

Result<int> Database::ResolveNode(std::string_view name_or_address) const {
  for (int i = 0; i < num_nodes(); ++i) {
    if (EqualsIgnoreCase(node_name(i), name_or_address) ||
        node_address(i) == name_or_address) {
      return i;
    }
  }
  return NotFoundError(
      StrCat("no Vertica node '", name_or_address, "'"));
}

void Database::RegisterScalarFunction(const std::string& name,
                                      ScalarFn fn) {
  functions_[ToUpper(name)] = std::move(fn);
}

bool Database::HasScalarFunction(const std::string& name) const {
  return functions_.count(ToUpper(name)) > 0;
}

Result<std::unique_ptr<Session>> Database::Connect(sim::Process& self,
                                                   int node,
                                                   const net::Host* client) {
  if (node < 0 || node >= num_nodes()) {
    return InvalidArgumentError(StrCat("no node ", node));
  }
  if (active_sessions_[node] >= options_.max_client_sessions) {
    return ResourceExhaustedError(
        StrCat("MaxClientSessions (", options_.max_client_sessions,
               ") reached on ", node_name(node)));
  }
  ++active_sessions_[node];
  // Connection setup: handshake round trip plus session create CPU.
  Status status = self.Sleep(options_.cost.connection_setup);
  if (status.ok()) {
    status = net::RunCpu(self, network_, hosts_[node],
                         options_.cost.statement_overhead_cpu);
  }
  if (!status.ok()) {
    --active_sessions_[node];
    return status;
  }
  return std::unique_ptr<Session>(new Session(this, node, client));
}

double Database::NodeCpuUtilization(int node) const {
  const net::Host& host = hosts_[node];
  if (!host.has_cpu()) return 0;
  double rate = network_->LinkCurrentRate(host.cpu);
  return rate / network_->link_capacity(host.cpu);
}

double Database::NodeExtEgressRate(int node) const {
  return network_->LinkCurrentRate(hosts_[node].ext_egress);
}

Result<Database::TableStorage*> Database::GetStorage(
    const std::string& table) {
  auto it = storage_.find(ToLower(table));
  if (it == storage_.end()) {
    return NotFoundError(StrCat("no storage for table '", table, "'"));
  }
  return &it->second;
}

Status Database::CreateTableWithStorage(TableDef def) {
  std::string key = ToLower(def.name);
  storage::Schema schema = def.schema;
  FABRIC_RETURN_IF_ERROR(catalog_.CreateTable(std::move(def)));
  TableStorage table_storage;
  for (int i = 0; i < num_nodes(); ++i) {
    table_storage.per_node.push_back(
        std::make_unique<storage::SegmentStore>(schema));
  }
  storage_.emplace(key, std::move(table_storage));
  return Status::OK();
}

Status Database::DropTableWithStorage(const std::string& name) {
  FABRIC_RETURN_IF_ERROR(catalog_.DropTable(name));
  storage_.erase(ToLower(name));
  return Status::OK();
}

Status Database::RenameTableWithStorage(const std::string& from,
                                        const std::string& to,
                                        bool replace) {
  // The whole swap happens in one engine step, so it is atomic with
  // respect to every other simulated actor (Vertica's global catalog
  // commit).
  if (replace && catalog_.HasTable(to)) {
    FABRIC_RETURN_IF_ERROR(catalog_.GetTable(from).status());
    FABRIC_RETURN_IF_ERROR(DropTableWithStorage(to));
  }
  FABRIC_RETURN_IF_ERROR(catalog_.RenameTable(from, to));
  auto it = storage_.find(ToLower(from));
  FABRIC_CHECK(it != storage_.end()) << "storage missing for " << from;
  TableStorage moved = std::move(it->second);
  storage_.erase(it);
  storage_.emplace(ToLower(to), std::move(moved));
  return Status::OK();
}

int Database::OwnerNode(const TableDef& def,
                        const storage::Row& row) const {
  if (def.segmentation.unsegmented()) return -1;
  uint64_t h =
      storage::RowSegmentationHash(row, def.segmentation.columns);
  return RingSegmentOf(h, num_nodes());
}

storage::TxnId Database::BeginTxnInternal() {
  storage::TxnId txn = next_txn_++;
  txns_.emplace(txn, TxnState{});
  obs::TraceEvent("vertica", "txn.begin", {{"txn", txn}});
  obs::IncrCounter("vertica.txns_begun");
  return txn;
}

Status Database::LockTableX(sim::Process& self, storage::TxnId txn,
                            const std::string& table) {
  std::string key = ToLower(table);
  TableLock& lock = locks_[key];
  if (lock.released == nullptr) {
    lock.released = std::make_unique<sim::Condition>(engine_);
  }
  if (lock.x_owner == txn) return Status::OK();
  // X is granted once no other txn holds any lock on the table (an
  // insert lock held by this txn upgrades).
  FABRIC_RETURN_IF_ERROR(lock.released->WaitUntil(self, [&lock, txn] {
    if (lock.x_owner != 0 && lock.x_owner != txn) return false;
    for (storage::TxnId holder : lock.insert_owners) {
      if (holder != txn) return false;
    }
    return true;
  }));
  lock.x_owner = txn;
  auto it = txns_.find(txn);
  FABRIC_CHECK(it != txns_.end()) << "lock by unknown txn";
  it->second.locked_tables.insert(key);
  return Status::OK();
}

Status Database::LockTableI(sim::Process& self, storage::TxnId txn,
                            const std::string& table) {
  std::string key = ToLower(table);
  TableLock& lock = locks_[key];
  if (lock.released == nullptr) {
    lock.released = std::make_unique<sim::Condition>(engine_);
  }
  if (lock.x_owner == txn || lock.insert_owners.count(txn) > 0) {
    return Status::OK();
  }
  FABRIC_RETURN_IF_ERROR(lock.released->WaitUntil(
      self, [&lock] { return lock.x_owner == 0; }));
  lock.insert_owners.insert(txn);
  auto it = txns_.find(txn);
  FABRIC_CHECK(it != txns_.end()) << "lock by unknown txn";
  it->second.locked_tables.insert(key);
  return Status::OK();
}

void Database::TouchTable(storage::TxnId txn, const std::string& table) {
  auto it = txns_.find(txn);
  FABRIC_CHECK(it != txns_.end()) << "touch by unknown txn";
  it->second.touched_tables.insert(ToLower(table));
}

Status Database::CommitTxnInternal(sim::Process& self,
                                   storage::TxnId txn) {
  auto it = txns_.find(txn);
  if (it == txns_.end()) {
    return FailedPreconditionError("commit of unknown txn");
  }
  // Commit latency: group-commit style fixed cost.
  FABRIC_RETURN_IF_ERROR(self.Sleep(options_.cost.commit_overhead));
  storage::Epoch commit_epoch = ++epoch_;
  obs::TraceEvent("vertica", "epoch.advance", {{"epoch", commit_epoch}});
  obs::TraceEvent("vertica", "txn.commit",
                  {{"txn", txn}, {"epoch", commit_epoch}});
  obs::IncrCounter("vertica.txns_committed");
  for (const std::string& table : it->second.touched_tables) {
    auto storage_it = storage_.find(table);
    if (storage_it == storage_.end()) continue;  // dropped mid-txn
    for (auto& store : storage_it->second.per_node) {
      store->CommitTxn(txn, commit_epoch);
    }
  }
  for (const std::string& table : it->second.locked_tables) {
    TableLock& lock = locks_[table];
    if (lock.x_owner == txn) lock.x_owner = 0;
    lock.insert_owners.erase(txn);
    lock.released->NotifyAll();
  }
  txns_.erase(it);
  return Status::OK();
}

void Database::AbortTxnInternal(storage::TxnId txn) {
  auto it = txns_.find(txn);
  if (it == txns_.end()) return;
  obs::TraceEvent("vertica", "txn.abort", {{"txn", txn}});
  obs::IncrCounter("vertica.txns_aborted");
  for (const std::string& table : it->second.touched_tables) {
    auto storage_it = storage_.find(table);
    if (storage_it == storage_.end()) continue;
    for (auto& store : storage_it->second.per_node) {
      store->AbortTxn(txn);
    }
  }
  for (const std::string& table : it->second.locked_tables) {
    TableLock& lock = locks_[table];
    if (lock.x_owner == txn) lock.x_owner = 0;
    lock.insert_owners.erase(txn);
    lock.released->NotifyAll();
  }
  txns_.erase(it);
}

Status Database::PoolAdmit(sim::Process& self, int node) {
  if (pool_slots_.empty()) return self.CheckAlive();
  return pool_slots_[node]->Acquire(self);
}

void Database::PoolRelease(int node) {
  if (pool_slots_.empty()) return;
  pool_slots_[node]->Release();
}

}  // namespace fabric::vertica
