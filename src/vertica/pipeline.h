#ifndef FABRIC_VERTICA_PIPELINE_H_
#define FABRIC_VERTICA_PIPELINE_H_

// Lowers SQL SELECT bodies and scan-residual predicates into the exec
// pipeline IR (exec/pipeline.h) and caches the compiled artifacts per
// plan fingerprint. Lowering is conservative: any shape whose compiled
// semantics could deviate from the row-at-a-time interpreter — NULL
// literals, HASH, scalar UDx calls, statically mistyped operands,
// multiple stars, invalid aggregate items — is "not compilable" and the
// caller keeps the interpreter, which stays authoritative for results
// and errors alike.

#include <map>
#include <memory>
#include <optional>
#include <string>

#include "exec/pipeline.h"
#include "storage/schema.h"
#include "vertica/sql_ast.h"
#include "vertica/sql_eval.h"

namespace fabric::vertica {

// A SELECT body lowered to the exec IR, plus the result schema the
// interpreter would have produced (ORDER BY / LIMIT stay with the
// caller, shared between both paths).
struct CompiledQuery {
  exec::CompiledSelect select;
  storage::Schema out_schema;
};

// Lowering entry points (exposed for tests). nullopt: not compilable.
std::optional<exec::Program> LowerExpr(const sql::Expr& expr,
                                       const storage::Schema& schema);
std::optional<CompiledQuery> LowerSelect(
    const sql::SelectStmt& select, const storage::Schema& schema,
    const sql::UdxResolver* udx, const sql::AggregateUdxResolver* agg_udx);

// Per-database compilation cache. Both outcomes are cached — a compiled
// artifact and a "not compilable" verdict — keyed by (schema signature,
// statement rendering), so repeated plans skip lowering entirely and
// V2S failover retries of the same partition query reuse one artifact.
class PipelineCompiler {
 public:
  explicit PipelineCompiler(bool enabled = true) : enabled_(enabled) {}

  bool enabled() const { return enabled_; }
  void set_enabled(bool enabled) { enabled_ = enabled; }

  // nullptr: not compilable (callers run the interpreter). Returns
  // nullptr without lowering when disabled.
  std::shared_ptr<const CompiledQuery> GetOrCompileSelect(
      const sql::SelectStmt& select, const storage::Schema& schema,
      const sql::UdxResolver* udx, const sql::AggregateUdxResolver* agg_udx);

  // Compiles a WHERE-residual predicate (strict EvalPredicate semantics)
  // for the scan's batch path; nullptr when not compilable or disabled.
  std::shared_ptr<const exec::Program> GetOrCompilePredicate(
      const sql::Expr& expr, const storage::Schema& schema);

  // Cache telemetry (tests assert retries hit the cache).
  int64_t cache_hits() const { return cache_hits_; }
  int64_t cache_misses() const { return cache_misses_; }

 private:
  bool enabled_;
  std::map<std::string, std::shared_ptr<const CompiledQuery>> selects_;
  std::map<std::string, std::shared_ptr<const exec::Program>> predicates_;
  int64_t cache_hits_ = 0;
  int64_t cache_misses_ = 0;
};

}  // namespace fabric::vertica

#endif  // FABRIC_VERTICA_PIPELINE_H_
