#ifndef FABRIC_VERTICA_SESSION_H_
#define FABRIC_VERTICA_SESSION_H_

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.h"
#include "vertica/database.h"
#include "vertica/projections/planner.h"
#include "vertica/sql_ast.h"

namespace fabric::vertica {

struct SpillEnv;

// Stable message prefix of the FAILED_PRECONDITION error a per-table
// forced-projection hint raises when the named projection cannot serve
// the query (unknown, wrong anchor, or ineligible for the shape).
inline constexpr char kForcedProjectionToken[] =
    "FORCED_PROJECTION_INELIGIBLE";

// Stable message prefix of the FAILED_PRECONDITION error a forced
// "merge" join strategy raises when the two sides' layouts cannot feed a
// merge join (either side lacks a projection sorted on its join key).
inline constexpr char kForcedJoinStrategyToken[] =
    "FORCED_JOIN_STRATEGY_UNAVAILABLE";

// A fully planned two-table INNER JOIN (both sides base tables, simple
// column-equality ON): the join keys, the anchor columns each side must
// scan, the chosen layout per side and the join strategy they imply.
// Shared by the executor and EXPLAIN.
struct JoinQueryPlan {
  const TableDef* left_table = nullptr;
  const TableDef* right_table = nullptr;
  int left_key = -1;   // join-key column index in each anchor schema
  int right_key = -1;
  std::vector<int> left_needed;   // anchor columns each side scans,
  std::vector<int> right_needed;  // ascending, join key included
  projections::JoinPlan plan;
  std::vector<std::pair<std::string, double>> left_candidates;
  std::vector<std::pair<std::string, double>> right_candidates;
};

// One client connection to a Vertica node (the JDBC-connection analogue
// the connector tasks hold). Sessions execute SQL with full cost
// accounting and carry transaction state. Sessions are not shared across
// processes.
//
// Error handling mirrors a real driver: a killed process sees CANCELLED
// from Execute; the session's open transaction is rolled back when the
// session is destroyed (the server noticing the dropped connection).
class Session {
 public:
  ~Session();

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  // Executes one SQL statement. SELECT streams its result back to the
  // client with per-connection serialization costs; DML returns the
  // affected-row count; DDL auto-commits.
  Result<QueryResult> Execute(sim::Process& self, std::string_view sql);

  // Graceful close: rolls back any open transaction, frees the session
  // slot, charges teardown latency.
  Status Close(sim::Process& self);

  // Instant host-side cleanup (rollback + slot release) used on abandoned
  // sessions — what the server does when the TCP connection drops. Safe
  // to call from killed processes and destructors.
  void Abandon();

  int node() const { return node_; }
  Database* database() const { return db_; }
  bool in_transaction() const { return txn_ != 0; }

  // True once the node this session was attached to died. A broken
  // session fails every further statement with UNAVAILABLE; its open
  // transaction aborts when the in-flight statement unwinds (or on
  // Abandon/Close). Set by Database::KillNode.
  bool broken() const { return broken_; }
  void MarkBroken() { broken_ = true; }

  // Workload-manager pool this session's statements are admitted
  // against ("" = the default pool). No-op when the database runs
  // without named pools.
  void set_resource_pool(std::string pool) {
    resource_pool_ = std::move(pool);
  }
  const std::string& resource_pool() const { return resource_pool_; }
  // Per-query memory to request at admission (0: the pool's derived
  // per-query grant).
  void set_memory_request(double bytes) { memory_request_ = bytes; }

  // The admission grant covering the currently executing statement
  // (invalid between statements or when WM is off). Budget-aware
  // operators read their memory allowance from it.
  const wm::Grant& current_grant() const { return wm_grant_; }

  // Observability aids (the server's view of this session's last write,
  // exposed so instrumented clients can distinguish "commit durable, ack
  // lost to a kill" from "commit never happened" — the Section 2.2.2
  // hazard). Protocol code must NOT branch on these; only tracing and
  // conformance tests read them.
  //
  // Epoch of the most recent durable commit (explicit COMMIT or DML
  // autocommit) on this session; 0 if the last commit attempt never
  // reached durability.
  storage::Epoch last_commit_epoch() const { return last_commit_epoch_; }
  // Affected-row count of the most recent UPDATE, recorded even when the
  // statement's ack was lost; -1 before any UPDATE ran.
  int64_t last_update_affected() const { return last_update_affected_; }

  // Test hook pinning the planner's projection choice for base-table
  // scans: nullopt = automatic (default), "" = force the super
  // projection, a name = force that projection when eligible (silently
  // falling back to the super projection otherwise — legacy semantics).
  void set_forced_projection(std::optional<std::string> name) {
    forced_projection_ = std::move(name);
  }

  // Per-table variant for joins: pins the projection used whenever
  // `table` is scanned ("" = the super projection). Unlike the legacy
  // session-wide hint, an unknown/ineligible name fails the statement
  // with a FAILED_PRECONDITION error prefixed kForcedProjectionToken.
  // Takes precedence over the session-wide hint for that table.
  void set_forced_projection(const std::string& table,
                             const std::string& projection) {
    forced_table_projections_[ToLower(table)] = projection;
  }
  void clear_forced_projections() {
    forced_table_projections_.clear();
    forced_projection_.reset();
  }

  // Test hook pinning the join strategy: nullopt = automatic (default),
  // "hash" = always allowed, "merge" = fail the statement with a
  // FAILED_PRECONDITION error prefixed kForcedJoinStrategyToken when the
  // sides' layouts cannot feed a merge join.
  void set_forced_join_strategy(std::optional<std::string> strategy) {
    forced_join_strategy_ = std::move(strategy);
  }

  // Internal: executes a parsed SELECT without streaming to the client
  // (used for views and INSERT ... SELECT).
  Result<QueryResult> ExecuteSelectInternal(sim::Process& self,
                                            const sql::SelectStmt& select,
                                            int view_depth);

 private:
  friend class Database;
  friend class CopyStream;

  Session(Database* db, int node, const net::Host* client);

  // Statement dispatchers.
  Result<QueryResult> ExecSelect(sim::Process& self,
                                 const sql::SelectStmt& select,
                                 bool to_client, int view_depth);
  // The INNER JOIN arm of ExecSelect: plans both sides (merge join on
  // co-sorted projections, hash join otherwise), falls back to the
  // recursive scan-and-hash path for views / system tables / complex ON.
  Result<QueryResult> ExecJoin(sim::Process& self,
                               const sql::SelectStmt& select, bool to_client,
                               int view_depth, const SpillEnv* spill);
  // Distributed scan of one base table through an already-chosen layout
  // (the tail of ExecSelect; also used for each side of a planned join).
  Result<QueryResult> ExecScanSelect(sim::Process& self,
                                     const sql::SelectStmt& select,
                                     const TableDef* def,
                                     const projections::PlanChoice& plan,
                                     bool to_client, const SpillEnv* spill);
  // Node-local merge join of co-located layouts: every node joins its
  // own segments of both sides and ships only the join output to the
  // initiator. Returns combined rows ordered by (segment, left storage
  // order) — byte-identical to the gathered hash join's row order.
  Result<std::vector<storage::Row>> ExecCoLocatedJoin(
      sim::Process& self, const sql::SelectStmt& select,
      const JoinQueryPlan& jq);
  // Resolves the physical layout for one base-table scan: the per-table
  // forced hint first (typed error when it cannot serve the shape), then
  // the legacy session-wide hint (silent fallback), then the cost-based
  // planner.
  Result<projections::PlanChoice> ResolveScanPlan(
      const TableDef& def, const projections::QueryShape& shape) const;
  // Plans a two-table INNER JOIN. nullopt = not plannable here (a view /
  // system-table side, self join, or non-equality ON) — the caller uses
  // the legacy recursive path. Typed forced-hint errors propagate.
  Result<std::optional<JoinQueryPlan>> PlanJoinQuery(
      const sql::SelectStmt& select) const;
  Result<QueryResult> ExecCreateTable(sim::Process& self,
                                      const sql::CreateTableStmt& stmt);
  Result<QueryResult> ExecCreateView(sim::Process& self,
                                     const sql::CreateViewStmt& stmt);
  Result<QueryResult> ExecCreateProjection(
      sim::Process& self, const sql::CreateProjectionStmt& stmt);
  Result<QueryResult> ExecExplain(sim::Process& self,
                                  const sql::ExplainStmt& stmt);
  Result<QueryResult> ExecDrop(sim::Process& self, const sql::DropStmt& s);
  Result<QueryResult> ExecRename(sim::Process& self,
                                 const sql::RenameTableStmt& stmt);
  Result<QueryResult> ExecTruncate(sim::Process& self,
                                   const sql::TruncateStmt& stmt);
  Result<QueryResult> ExecInsert(sim::Process& self,
                                 const sql::InsertStmt& stmt);
  Result<QueryResult> ExecUpdate(sim::Process& self,
                                 const sql::UpdateStmt& stmt);
  Result<QueryResult> ExecDelete(sim::Process& self,
                                 const sql::DeleteStmt& stmt);
  Result<QueryResult> ExecTxn(sim::Process& self, const sql::TxnStmt& stmt);

  // Ensures a write transaction exists; returns (txn, autocommit?).
  struct WriteTxn {
    storage::TxnId txn;
    bool autocommit;
  };
  WriteTxn EnsureWriteTxn();
  // Finishes an autocommit txn (commit on OK, abort on error).
  Status FinishWriteTxn(sim::Process& self, const WriteTxn& wt,
                        Status status);

  // Streams `wire_bytes` of result data (already produced at the
  // initiator) to the client with the per-connection rate cap.
  Status StreamToClient(sim::Process& self, double wire_bytes,
                        double rate_cap);

  // The reverse direction: statement payload travelling client -> node
  // (INSERT VALUES data).
  Status StreamToClientReverse(sim::Process& self, double wire_bytes);

  // Materializes a system table (v_catalog.*).
  Result<QueryResult> SystemTable(const std::string& lower_name) const;

  Database* db_;
  int node_;
  const net::Host* client_;  // may be null (console)
  storage::TxnId txn_ = 0;   // open explicit transaction
  std::optional<std::string> forced_projection_;
  std::map<std::string, std::string> forced_table_projections_;
  std::optional<std::string> forced_join_strategy_;
  std::string resource_pool_;
  double memory_request_ = 0;
  wm::Grant wm_grant_;
  storage::Epoch last_commit_epoch_ = 0;
  int64_t last_update_affected_ = -1;
  bool closed_ = false;
  bool broken_ = false;
};

}  // namespace fabric::vertica

#endif  // FABRIC_VERTICA_SESSION_H_
