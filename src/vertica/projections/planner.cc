#include "vertica/projections/planner.h"

#include <algorithm>
#include <map>
#include <set>

#include "common/string_util.h"
#include "storage/encoding.h"

namespace fabric::vertica::projections {

namespace {

using storage::DataType;
using storage::Encoding;
using storage::Row;
using storage::Schema;
using storage::Value;

// Collects lower-cased names of every column reference under `expr`
// that resolves against `schema`.
void CollectColumnNames(const sql::Expr& expr, const Schema& schema,
                        std::set<std::string>* out) {
  if (expr.kind == sql::Expr::Kind::kColumnRef) {
    if (schema.Contains(expr.column)) out->insert(ToLower(expr.column));
    return;
  }
  for (const sql::ExprPtr& arg : expr.args) {
    CollectColumnNames(*arg, schema, out);
  }
}

// Columns compared directly against a literal in the WHERE conjunction —
// the terms the scan's min-max container pruning can use. Walks only
// through ANDs (an OR-ed compare prunes nothing by itself).
void CollectCompareColumns(const sql::Expr& expr, const Schema& schema,
                           std::set<std::string>* out) {
  if (expr.kind == sql::Expr::Kind::kBinary) {
    if (expr.op == "AND") {
      CollectCompareColumns(*expr.args[0], schema, out);
      CollectCompareColumns(*expr.args[1], schema, out);
      return;
    }
    static const char* const kCompareOps[] = {"=", "<", "<=", ">", ">="};
    for (const char* op : kCompareOps) {
      if (expr.op != op) continue;
      const sql::Expr& lhs = *expr.args[0];
      const sql::Expr& rhs = *expr.args[1];
      const sql::Expr* col = nullptr;
      if (lhs.kind == sql::Expr::Kind::kColumnRef &&
          rhs.kind == sql::Expr::Kind::kLiteral) {
        col = &lhs;
      } else if (rhs.kind == sql::Expr::Kind::kColumnRef &&
                 lhs.kind == sql::Expr::Kind::kLiteral) {
        col = &rhs;
      }
      if (col != nullptr && schema.Contains(col->column)) {
        out->insert(ToLower(col->column));
      }
      return;
    }
  }
}

bool HasAggregateCall(const sql::Expr& expr) {
  if (expr.kind == sql::Expr::Kind::kCall) return true;
  for (const sql::ExprPtr& arg : expr.args) {
    if (HasAggregateCall(*arg)) return true;
  }
  return false;
}

}  // namespace

QueryShape ShapeOf(const sql::SelectStmt& select, const Schema& schema) {
  QueryShape shape;
  shape.at_epoch = select.at_epoch;
  std::set<std::string> referenced;
  for (const sql::SelectItem& item : select.items) {
    if (item.star) {
      shape.star = true;
      continue;
    }
    CollectColumnNames(*item.expr, schema, &referenced);
    if (HasAggregateCall(*item.expr)) shape.aggregate = true;
  }
  if (select.where != nullptr) {
    CollectColumnNames(*select.where, schema, &referenced);
    std::set<std::string> compares;
    CollectCompareColumns(*select.where, schema, &compares);
    shape.where_compare_columns.assign(compares.begin(), compares.end());
  }
  for (const std::string& col : select.group_by) {
    if (schema.Contains(col)) referenced.insert(ToLower(col));
    shape.group_by.push_back(ToLower(col));
  }
  if (!select.group_by.empty()) shape.aggregate = true;
  for (const sql::OrderItem& item : select.order_by) {
    if (schema.Contains(item.column)) referenced.insert(ToLower(item.column));
  }
  shape.referenced.assign(referenced.begin(), referenced.end());
  return shape;
}

bool Eligible(const TableDef& anchor, const ProjectionDef& proj,
              const QueryShape& shape) {
  // AT EPOCH older than the projection: its populated rows carry the
  // creating commit's epoch, not the anchor's history.
  if (shape.at_epoch >= 0 &&
      static_cast<storage::Epoch>(shape.at_epoch) < proj.create_epoch) {
    return false;
  }
  if (shape.star) {
    // SELECT * demands the full anchor column set in schema order.
    if (static_cast<int>(proj.columns.size()) !=
        anchor.schema.num_columns()) {
      return false;
    }
    for (size_t i = 0; i < proj.columns.size(); ++i) {
      if (proj.columns[i] != static_cast<int>(i)) return false;
    }
  }
  for (const std::string& name : shape.referenced) {
    if (!proj.schema.Contains(name)) return false;
  }
  return true;
}

double CostProjection(const TableDef& anchor, const ProjectionDef* proj,
                      const QueryShape& shape, CostAttrs* attrs) {
  if (attrs != nullptr) *attrs = CostAttrs{};
  if (proj == nullptr) return 1.0;  // the super projection baseline

  // Narrower column subsets scan proportionally fewer bytes.
  double width =
      static_cast<double>(proj->columns.size()) /
      static_cast<double>(std::max(1, anchor.schema.num_columns()));

  // A compare term on the leading sort column turns min-max pruning from
  // opportunistic into systematic: sorted containers have disjoint
  // ranges on that column.
  double prune = 1.0;
  if (!proj->sort_columns.empty()) {
    const std::string lead =
        ToLower(proj->schema.column(proj->sort_columns.front()).name);
    for (const std::string& col : shape.where_compare_columns) {
      if (col == lead) {
        prune = 0.5;
        break;
      }
    }
  }

  // Merge-style aggregation: when the sort order prefixes the GROUP BY
  // keys, equal keys arrive adjacent and the aggregate needs no hash
  // table.
  double agg = 1.0;
  if (shape.aggregate && !shape.group_by.empty() &&
      proj->sort_columns.size() >= shape.group_by.size()) {
    bool prefix = true;
    for (size_t i = 0; i < shape.group_by.size(); ++i) {
      const std::string sorted_col =
          ToLower(proj->schema.column(proj->sort_columns[i]).name);
      if (sorted_col != shape.group_by[i]) {
        prefix = false;
        break;
      }
    }
    if (prefix) {
      agg = 0.35;
      if (attrs != nullptr) attrs->sorted_group_by = true;
    }
  }

  // Streaming merge join: when the sort order leads with the join key,
  // equal keys arrive adjacent and this side feeds the join without a
  // hash table.
  double join = 1.0;
  if (!shape.join_keys.empty() && !proj->sort_columns.empty()) {
    const std::string lead =
        ToLower(proj->schema.column(proj->sort_columns.front()).name);
    if (lead == shape.join_keys.front()) {
      join = 0.55;
      if (attrs != nullptr) attrs->sorted_join = true;
    }
  }
  return width * prune * agg * join;
}

PlanChoice ChoosePlan(
    const Catalog& catalog, const TableDef& anchor, const QueryShape& shape,
    std::vector<std::pair<std::string, double>>* candidates) {
  PlanChoice choice;
  choice.projection = nullptr;
  choice.cost = 1.0;
  choice.reason = "super projection (all columns, insertion order)";
  if (candidates != nullptr) candidates->emplace_back("super", 1.0);
  for (const ProjectionDef* proj : catalog.ProjectionsOf(anchor.name)) {
    if (!Eligible(anchor, *proj, shape)) continue;
    CostAttrs attrs;
    double cost = CostProjection(anchor, proj, shape, &attrs);
    if (candidates != nullptr) candidates->emplace_back(proj->name, cost);
    // Strictly cheaper wins; ties keep the earlier choice (super first,
    // then name order from ProjectionsOf) — fully deterministic.
    if (cost < choice.cost) {
      choice.projection = proj;
      choice.cost = cost;
      choice.sorted_group_by = attrs.sorted_group_by;
      choice.sorted_join = attrs.sorted_join;
      choice.reason = StrCat(
          "projection ", proj->name, " (", proj->columns.size(), "/",
          anchor.schema.num_columns(), " columns",
          attrs.sorted_group_by ? ", sorted group-by" : "",
          attrs.sorted_join ? ", sorted join" : "", ")");
    }
  }
  return choice;
}

std::optional<PlanChoice> ChooseSortedJoinPlan(const Catalog& catalog,
                                               const TableDef& anchor,
                                               const QueryShape& shape) {
  if (shape.join_keys.empty()) return std::nullopt;
  std::optional<PlanChoice> choice;
  for (const ProjectionDef* proj : catalog.ProjectionsOf(anchor.name)) {
    if (!Eligible(anchor, *proj, shape)) continue;
    CostAttrs attrs;
    double cost = CostProjection(anchor, proj, shape, &attrs);
    if (!attrs.sorted_join) continue;
    // Strictly cheaper wins; ties keep the earlier (name-ordered) pick.
    if (choice.has_value() && cost >= choice->cost) continue;
    PlanChoice pick;
    pick.projection = proj;
    pick.cost = cost;
    pick.sorted_group_by = attrs.sorted_group_by;
    pick.sorted_join = true;
    pick.reason = StrCat(
        "projection ", proj->name, " (", proj->columns.size(), "/",
        anchor.schema.num_columns(), " columns",
        attrs.sorted_group_by ? ", sorted group-by" : "", ", sorted join)");
    choice = pick;
  }
  return choice;
}

namespace {

// Lower-cased segmentation column names of the chosen physical layout:
// the projection's own segmentation, or the anchor's for the super
// projection. Empty = unsegmented (replicated on every node).
std::vector<std::string> LayoutSegmentation(const TableDef& anchor,
                                            const ProjectionDef* proj) {
  std::vector<std::string> names;
  if (proj == nullptr) {
    for (int c : anchor.segmentation.columns) {
      names.push_back(ToLower(anchor.schema.column(c).name));
    }
  } else {
    for (int c : proj->segmentation.columns) {
      names.push_back(ToLower(proj->schema.column(c).name));
    }
  }
  return names;
}

}  // namespace

JoinPlan ClassifyJoin(const TableDef& left_anchor, const PlanChoice& left,
                      const std::string& left_key,
                      const TableDef& right_anchor, const PlanChoice& right,
                      const std::string& right_key) {
  JoinPlan plan;
  plan.left = left;
  plan.right = right;
  plan.merge = left.sorted_join && right.sorted_join;
  if (plan.merge) {
    const std::vector<std::string> left_seg =
        LayoutSegmentation(left_anchor, left.projection);
    const std::vector<std::string> right_seg =
        LayoutSegmentation(right_anchor, right.projection);
    // A replicated right side joins against any left partitioning; a
    // segmented right side co-locates only when both sides hash on their
    // join-key column (equal keys share a segment index — which needs
    // the key columns to be the same type, since the segmentation hash
    // is typed).
    bool same_type = false;
    auto lc = left_anchor.schema.IndexOf(left_key);
    auto rc = right_anchor.schema.IndexOf(right_key);
    if (lc.ok() && rc.ok()) {
      same_type = left_anchor.schema.column(*lc).type ==
                  right_anchor.schema.column(*rc).type;
    }
    plan.co_located =
        right_seg.empty() ||
        (same_type &&
         left_seg.size() == 1 && left_seg.front() == ToLower(left_key) &&
         right_seg.size() == 1 && right_seg.front() == ToLower(right_key));
  }
  return plan;
}

std::vector<Encoding> ChooseEncodings(const Schema& schema,
                                      const std::vector<int>& sort_columns,
                                      const std::vector<Row>& sample) {
  if (sample.empty()) return {};
  std::set<int> sorted_cols(sort_columns.begin(), sort_columns.end());
  std::vector<Encoding> encodings;
  encodings.reserve(schema.num_columns());
  const size_t n = sample.size();
  // Low cardinality: distinct values at most 1/8th of the rows (and
  // capped), measured on display strings — cheap and type-stable.
  const size_t low_cardinality =
      std::max<size_t>(16, std::min<size_t>(4096, n / 8));
  for (int c = 0; c < schema.num_columns(); ++c) {
    std::set<std::string> distinct;
    for (const Row& row : sample) {
      distinct.insert(row[c].is_null() ? std::string("\x01")
                                       : row[c].ToDisplayString());
      if (distinct.size() > low_cardinality) break;
    }
    bool low = distinct.size() <= low_cardinality;
    if (sorted_cols.count(c) > 0 && low) {
      // Sorted + low cardinality: long runs, RLE wins outright.
      encodings.push_back(Encoding::kRle);
    } else if (low || schema.column(c).type == DataType::kVarchar) {
      encodings.push_back(Encoding::kDictionary);
    } else {
      encodings.push_back(Encoding::kPlain);
    }
  }
  return encodings;
}

}  // namespace fabric::vertica::projections
