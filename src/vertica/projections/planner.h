#ifndef FABRIC_VERTICA_PROJECTIONS_PLANNER_H_
#define FABRIC_VERTICA_PROJECTIONS_PLANNER_H_

#include <optional>
#include <string>
#include <vector>

#include "storage/schema.h"
#include "vertica/catalog.h"
#include "vertica/sql_ast.h"

namespace fabric::vertica::projections {

// The shape of one SELECT over a base table, reduced to what projection
// costing needs. Column names are lower-cased.
struct QueryShape {
  std::vector<std::string> referenced;  // every column the query touches
  std::vector<std::string> group_by;
  bool star = false;
  bool aggregate = false;
  int64_t at_epoch = -1;
  // Columns with a direct compare-to-literal term in WHERE (the terms
  // min-max container pruning can use).
  std::vector<std::string> where_compare_columns;
  // Join-key columns of this side of an INNER JOIN (empty when the query
  // has no join). A projection whose sort order leads with the first join
  // key can stream a merge join without a hash table.
  std::vector<std::string> join_keys;
};

// Extracts the QueryShape of `select` against the anchor schema.
// Expressions referencing unknown columns simply contribute nothing —
// eligibility then falls back to the super projection, and the executor
// reports the real error.
QueryShape ShapeOf(const sql::SelectStmt& select,
                   const storage::Schema& schema);

// The planner's decision for one scan.
struct PlanChoice {
  const ProjectionDef* projection = nullptr;  // null => super projection
  double cost = 1.0;
  // True when the chosen projection's sort order prefixes the GROUP BY
  // keys: the aggregate runs merge-style on sorted runs instead of
  // hashing.
  bool sorted_group_by = false;
  // True when the chosen projection's sort order leads with the query's
  // first join key: this side can feed a streaming merge join.
  bool sorted_join = false;
  std::string reason;  // one-line costing summary for EXPLAIN
};

// Cost attributes reported alongside CostProjection's scalar cost.
struct CostAttrs {
  bool sorted_group_by = false;
  bool sorted_join = false;
};

// True when `proj` can serve the query: every referenced column is
// stored (star demands the full anchor column set in schema order), and
// the snapshot is not older than the projection (population collapses
// pre-existing history into the creating commit).
bool Eligible(const TableDef& anchor, const ProjectionDef& proj,
              const QueryShape& shape);

// Deterministic catalog-only cost of scanning the query through `proj`
// (nullptr = super projection, cost exactly 1.0). Never consults row or
// container counts, so a query costs the same under any Tuple Mover /
// workload configuration — the decision depends only on schema metadata.
// Lower is better. `attrs` (may be null) reports whether the merge-style
// aggregation / merge-join discounts applied.
double CostProjection(const TableDef& anchor, const ProjectionDef* proj,
                      const QueryShape& shape, CostAttrs* attrs = nullptr);

// Costs every eligible projection of the anchor and picks the cheapest;
// ties prefer the super projection, then the lexicographically first
// name. Also fills `candidates` (when non-null) with "name=cost" pairs
// for EXPLAIN, super projection first.
PlanChoice ChoosePlan(const Catalog& catalog, const TableDef& anchor,
                      const QueryShape& shape,
                      std::vector<std::pair<std::string, double>>* candidates
                          = nullptr);

// The cheapest eligible projection that can feed a streaming merge join
// (sort order leading with shape.join_keys.front()). The super
// projection stores insertion order and never qualifies. Empty when no
// projection qualifies — the join falls back to hashing.
std::optional<PlanChoice> ChooseSortedJoinPlan(const Catalog& catalog,
                                               const TableDef& anchor,
                                               const QueryShape& shape);

// The planner's decision for one INNER JOIN: the chosen layout per side
// plus the join strategy they imply.
struct JoinPlan {
  PlanChoice left;
  PlanChoice right;
  // Both sides scan projections sorted on the join key: streaming merge
  // join, no hash table.
  bool merge = false;
  // Merge join whose inputs need no reshuffle: the right layout is
  // replicated (unsegmented), or both layouts are segmented exactly on
  // their join-key column — equal keys land on the same node and the
  // join runs node-local, shipping only its output to the initiator.
  bool co_located = false;
  const char* strategy() const { return merge ? "merge" : "hash"; }
};

// Classifies the join strategy implied by two already-chosen layouts.
// `left_key` / `right_key` are the lower-cased join-key column names on
// each side.
JoinPlan ClassifyJoin(const TableDef& left_anchor, const PlanChoice& left,
                      const std::string& left_key,
                      const TableDef& right_anchor, const PlanChoice& right,
                      const std::string& right_key);

// Per-column encodings for a new projection, chosen from the data it is
// populated with: RLE on sorted low-cardinality columns, dictionary on
// other low-cardinality or string columns, plain for high-cardinality
// numerics. Empty when `sample` is empty (auto-encode until data says
// otherwise is wrong — an empty projection keeps auto selection).
std::vector<storage::Encoding> ChooseEncodings(
    const storage::Schema& schema, const std::vector<int>& sort_columns,
    const std::vector<storage::Row>& sample);

}  // namespace fabric::vertica::projections

#endif  // FABRIC_VERTICA_PROJECTIONS_PLANNER_H_
