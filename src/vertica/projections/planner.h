#ifndef FABRIC_VERTICA_PROJECTIONS_PLANNER_H_
#define FABRIC_VERTICA_PROJECTIONS_PLANNER_H_

#include <string>
#include <vector>

#include "storage/schema.h"
#include "vertica/catalog.h"
#include "vertica/sql_ast.h"

namespace fabric::vertica::projections {

// The shape of one SELECT over a base table, reduced to what projection
// costing needs. Column names are lower-cased.
struct QueryShape {
  std::vector<std::string> referenced;  // every column the query touches
  std::vector<std::string> group_by;
  bool star = false;
  bool aggregate = false;
  int64_t at_epoch = -1;
  // Columns with a direct compare-to-literal term in WHERE (the terms
  // min-max container pruning can use).
  std::vector<std::string> where_compare_columns;
};

// Extracts the QueryShape of `select` against the anchor schema.
// Expressions referencing unknown columns simply contribute nothing —
// eligibility then falls back to the super projection, and the executor
// reports the real error.
QueryShape ShapeOf(const sql::SelectStmt& select,
                   const storage::Schema& schema);

// The planner's decision for one scan.
struct PlanChoice {
  const ProjectionDef* projection = nullptr;  // null => super projection
  double cost = 1.0;
  // True when the chosen projection's sort order prefixes the GROUP BY
  // keys: the aggregate runs merge-style on sorted runs instead of
  // hashing.
  bool sorted_group_by = false;
  std::string reason;  // one-line costing summary for EXPLAIN
};

// True when `proj` can serve the query: every referenced column is
// stored (star demands the full anchor column set in schema order), and
// the snapshot is not older than the projection (population collapses
// pre-existing history into the creating commit).
bool Eligible(const TableDef& anchor, const ProjectionDef& proj,
              const QueryShape& shape);

// Deterministic catalog-only cost of scanning the query through `proj`
// (nullptr = super projection, cost exactly 1.0). Never consults row or
// container counts, so a query costs the same under any Tuple Mover /
// workload configuration — the decision depends only on schema metadata.
// Lower is better. `sorted_group_by` (may be null) reports whether the
// merge-style aggregation discount applied.
double CostProjection(const TableDef& anchor, const ProjectionDef* proj,
                      const QueryShape& shape, bool* sorted_group_by);

// Costs every eligible projection of the anchor and picks the cheapest;
// ties prefer the super projection, then the lexicographically first
// name. Also fills `candidates` (when non-null) with "name=cost" pairs
// for EXPLAIN, super projection first.
PlanChoice ChoosePlan(const Catalog& catalog, const TableDef& anchor,
                      const QueryShape& shape,
                      std::vector<std::pair<std::string, double>>* candidates
                          = nullptr);

// Per-column encodings for a new projection, chosen from the data it is
// populated with: RLE on sorted low-cardinality columns, dictionary on
// other low-cardinality or string columns, plain for high-cardinality
// numerics. Empty when `sample` is empty (auto-encode until data says
// otherwise is wrong — an empty projection keeps auto selection).
std::vector<storage::Encoding> ChooseEncodings(
    const storage::Schema& schema, const std::vector<int>& sort_columns,
    const std::vector<storage::Row>& sample);

}  // namespace fabric::vertica::projections

#endif  // FABRIC_VERTICA_PROJECTIONS_PLANNER_H_
