#ifndef FABRIC_VERTICA_COPY_STREAM_H_
#define FABRIC_VERTICA_COPY_STREAM_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "vertica/session.h"

namespace fabric::vertica {

// Programmatic access to Vertica's bulk-load COPY path (the
// VerticaCopyStream Java API the connector uses, Section 3.2.2). Data is
// written in batches under the session's transaction; rows that fail
// schema validation are rejected and counted rather than failing the load
// (the S2V rejected-rows tolerance builds on this).
//
// Wire accounting: by default each batch is charged as Avro-encoded bytes
// travelling client -> node plus parse CPU and intra-cluster routing to
// the owning segments. With `from_local_disk`, the batch is read from the
// node's data disk instead (the native parallel COPY baseline).
class CopyStream {
 public:
  struct Options {
    bool direct = true;           // bulk loads go straight to ROS
    bool from_local_disk = false; // file split already on the node
  };

  struct LoadResult {
    int64_t loaded = 0;
    int64_t rejected = 0;
    std::vector<storage::Row> rejected_sample;  // up to 10 rows
  };

  // Opens a COPY into `table` on the session's node. Requires an open
  // explicit transaction on the session OR autocommit (the stream then
  // commits on Finish). When the database runs named resource pools the
  // load is admitted against the session's pool here and holds its grant
  // until Finish (a bulk load is one long statement).
  static Result<std::unique_ptr<CopyStream>> Open(sim::Process& self,
                                                  Session* session,
                                                  const std::string& table,
                                                  Options options);

  // Abandoned streams (destroyed without Finish) release their admission
  // grant; the open transaction is left to the session's rollback.
  ~CopyStream();

  // Feeds one batch. Returns CANCELLED if the process is killed; the
  // session's transaction is then left to roll back.
  Status WriteBatch(sim::Process& self,
                    const std::vector<storage::Row>& rows);

  // Ends the stream. Commits iff the session had no explicit transaction
  // open (autocommit). Returns the load counts.
  Result<LoadResult> Finish(sim::Process& self);

 private:
  CopyStream(Session* session, TableDef def, Options options,
             storage::TxnId txn, bool autocommit, wm::Grant grant);

  void ReleaseGrant();

  Session* session_;
  // Owned copy, snapped at Open before the first yield: the catalog
  // entry a pointer would reference can be erased while the stream
  // blocks (admission queue, lock wait) or between batches — S2V's
  // staging promote renames tables with no lock held by this txn.
  TableDef def_;
  Options options_;
  storage::TxnId txn_;
  bool autocommit_;
  bool finished_ = false;
  wm::Grant grant_;
  LoadResult totals_;
};

}  // namespace fabric::vertica

#endif  // FABRIC_VERTICA_COPY_STREAM_H_
