#ifndef FABRIC_VERTICA_SQL_ANALYZER_H_
#define FABRIC_VERTICA_SQL_ANALYZER_H_

#include <optional>
#include <string>
#include <vector>

#include "storage/scan_kernels.h"
#include "storage/schema.h"
#include "vertica/catalog.h"
#include "vertica/sql_ast.h"

namespace fabric::vertica::sql {

// A normalized set of half-open ranges on the unsigned 2^64 hash ring.
// Bounds use unsigned __int128 so the exclusive upper bound 2^64 is
// representable without a wrap sentinel.
class RingRangeSet {
 public:
  static RingRangeSet Full();
  static RingRangeSet Empty();
  // [lower, upper) with upper as a 2^64-capable bound.
  static RingRangeSet Of(unsigned __int128 lower, unsigned __int128 upper);
  static RingRangeSet OfHashRange(const HashRange& range);

  RingRangeSet Union(const RingRangeSet& other) const;
  RingRangeSet Intersect(const RingRangeSet& other) const;

  bool IsEmpty() const { return ranges_.empty(); }
  bool IsFull() const;
  bool Contains(uint64_t hash) const;
  bool Intersects(const HashRange& range) const;

  // Total covered width (for skew/coverage property tests).
  unsigned __int128 TotalWidth() const;

  int num_ranges() const { return static_cast<int>(ranges_.size()); }

 private:
  void Normalize();

  // Sorted, disjoint, non-adjacent [lower, upper) pairs.
  std::vector<std::pair<unsigned __int128, unsigned __int128>> ranges_;
};

// Derives the ring ranges a WHERE clause constrains HASH(segmentation
// columns) to, for segment/node pruning. This is the analysis that makes
// the V2S locality-aware queries touch exactly one node. Returns Full()
// when the predicate does not constrain the ring (scan everything).
//
// Recognized forms (combined through AND/OR):
//   HASH(c1, ..., ck) >= n / > n / < n / <= n / = n
// where (c1..ck) matches `segmentation_column_names` in order.
RingRangeSet ExtractHashRanges(
    const Expr& where,
    const std::vector<std::string>& segmentation_column_names);

// A WHERE clause compiled for the vectorized scan path: the conjuncts
// the predicate kernels can run directly on encoded columns, plus the
// re-ANDed leftovers (`residual`, null when fully compiled) for the
// row-at-a-time interpreter.
struct CompiledScan {
  storage::ScanPredicate predicate;
  ExprPtr residual;
};

// Compiles the compilable conjuncts of `where`. Recognized shapes:
//   column <op> literal   (and the reversed literal <op> column) when
//       the column and literal types agree (numeric incl. BOOLEAN, or
//       VARCHAR/VARCHAR);
//   column IS [NOT] NULL;
//   HASH(col, ...) <op> integer-literal for op in {=, <, <=, >, >=}
//       (the V2S partition-pushdown shape), folded into inclusive ring
//       bounds; contradictory bounds mark the predicate always_false.
// Never fails: anything unrecognized — NULL literals, mixed-type
// comparisons, OR trees, expressions over multiple columns — lands in
// `residual` so interpreter semantics (including its errors) are
// preserved for those rows.
CompiledScan CompileScanPredicate(const Expr& where,
                                  const storage::Schema& schema);

}  // namespace fabric::vertica::sql

#endif  // FABRIC_VERTICA_SQL_ANALYZER_H_
