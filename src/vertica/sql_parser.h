#ifndef FABRIC_VERTICA_SQL_PARSER_H_
#define FABRIC_VERTICA_SQL_PARSER_H_

#include <string_view>

#include "common/result.h"
#include "vertica/sql_ast.h"

namespace fabric::vertica::sql {

// Parses one SQL statement of the supported subset:
//
//   SELECT items FROM t [WHERE e] [GROUP BY c,...] [ORDER BY c [DESC],...]
//     [LIMIT n] [AT EPOCH n]
//   CREATE TABLE [IF NOT EXISTS] t (col TYPE, ...)
//     [SEGMENTED BY HASH(c, ...) ALL NODES | UNSEGMENTED ALL NODES]
//   CREATE VIEW v AS SELECT ...
//   CREATE PROJECTION p AS SELECT c, ... FROM t [ORDER BY c, ...]
//     [SEGMENTED BY HASH(c, ...) | UNSEGMENTED]
//   DROP TABLE|VIEW|PROJECTION [IF EXISTS] name
//   EXPLAIN SELECT ...
//   ALTER TABLE t RENAME TO u
//   TRUNCATE TABLE t
//   INSERT [/*+ DIRECT */] INTO t [(c, ...)] VALUES (...), ... | SELECT ...
//   UPDATE t SET c = e, ... [WHERE e]
//   DELETE FROM t [WHERE e]
//   BEGIN | COMMIT | ROLLBACK
//
// Aggregates COUNT/SUM/AVG/MIN/MAX, the segmentation function HASH(...),
// and UDx calls with USING PARAMETERS are ordinary function calls in the
// expression grammar.
Result<Statement> Parse(std::string_view sql);

// Parses a standalone scalar expression (tests, stored predicates).
Result<ExprPtr> ParseExpression(std::string_view sql);

}  // namespace fabric::vertica::sql

#endif  // FABRIC_VERTICA_SQL_PARSER_H_
