#include "vertica/sql_lexer.h"

#include <cctype>

#include "common/string_util.h"

namespace fabric::vertica::sql {

bool Token::Is(std::string_view keyword_or_op) const {
  if (kind == Kind::kOperator) return text == keyword_or_op;
  if (kind == Kind::kKeywordOrIdent) return upper == keyword_or_op;
  return false;
}

Result<std::vector<Token>> Lex(std::string_view sql) {
  std::vector<Token> tokens;
  size_t i = 0;
  auto push = [&](Token::Kind kind, std::string text, int pos) {
    Token token;
    token.kind = kind;
    token.upper = ToUpper(text);
    token.text = std::move(text);
    token.position = pos;
    tokens.push_back(std::move(token));
  };

  while (i < sql.size()) {
    char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Line comment.
    if (c == '-' && i + 1 < sql.size() && sql[i + 1] == '-') {
      while (i < sql.size() && sql[i] != '\n') ++i;
      continue;
    }
    // Block comment; the /*+ DIRECT */ hint becomes a token.
    if (c == '/' && i + 1 < sql.size() && sql[i + 1] == '*') {
      size_t end = sql.find("*/", i + 2);
      if (end == std::string_view::npos) {
        return InvalidArgumentError("unterminated /* comment");
      }
      std::string body(Trim(sql.substr(i + 2, end - i - 2)));
      if (!body.empty() && body[0] == '+' &&
          EqualsIgnoreCase(Trim(std::string_view(body).substr(1)), "direct")) {
        push(Token::Kind::kKeywordOrIdent, "DIRECT_HINT",
             static_cast<int>(i));
      }
      i = end + 2;
      continue;
    }
    // String literal with '' escaping.
    if (c == '\'') {
      std::string value;
      size_t j = i + 1;
      bool closed = false;
      while (j < sql.size()) {
        if (sql[j] == '\'') {
          if (j + 1 < sql.size() && sql[j + 1] == '\'') {
            value.push_back('\'');
            j += 2;
            continue;
          }
          closed = true;
          ++j;
          break;
        }
        value.push_back(sql[j]);
        ++j;
      }
      if (!closed) {
        return InvalidArgumentError(
            StrCat("unterminated string literal at ", i));
      }
      push(Token::Kind::kString, std::move(value), static_cast<int>(i));
      i = j;
      continue;
    }
    // Number (integer or decimal; leading sign handled by the parser).
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < sql.size() &&
         std::isdigit(static_cast<unsigned char>(sql[i + 1])))) {
      size_t j = i;
      bool seen_dot = false;
      bool seen_exp = false;
      while (j < sql.size()) {
        char d = sql[j];
        if (std::isdigit(static_cast<unsigned char>(d))) {
          ++j;
        } else if (d == '.' && !seen_dot && !seen_exp) {
          seen_dot = true;
          ++j;
        } else if ((d == 'e' || d == 'E') && !seen_exp && j > i) {
          seen_exp = true;
          ++j;
          if (j < sql.size() && (sql[j] == '+' || sql[j] == '-')) ++j;
        } else {
          break;
        }
      }
      push(Token::Kind::kNumber, std::string(sql.substr(i, j - i)),
           static_cast<int>(i));
      i = j;
      continue;
    }
    // Identifier / keyword (letters, digits, _, and . for qualified names
    // like v_catalog.nodes are lexed as IDENT '.' IDENT).
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_' ||
        c == '"') {
      if (c == '"') {  // quoted identifier
        size_t end = sql.find('"', i + 1);
        if (end == std::string_view::npos) {
          return InvalidArgumentError("unterminated quoted identifier");
        }
        push(Token::Kind::kKeywordOrIdent,
             std::string(sql.substr(i + 1, end - i - 1)),
             static_cast<int>(i));
        i = end + 1;
        continue;
      }
      size_t j = i;
      while (j < sql.size() &&
             (std::isalnum(static_cast<unsigned char>(sql[j])) ||
              sql[j] == '_')) {
        ++j;
      }
      push(Token::Kind::kKeywordOrIdent, std::string(sql.substr(i, j - i)),
           static_cast<int>(i));
      i = j;
      continue;
    }
    // Multi-char operators first.
    auto two = sql.substr(i, 2);
    if (two == "<>" || two == "!=" || two == "<=" || two == ">=" ||
        two == "||") {
      push(Token::Kind::kOperator, std::string(two), static_cast<int>(i));
      i += 2;
      continue;
    }
    if (std::string_view("=<>+-*/%(),.;").find(c) != std::string_view::npos) {
      if (c == ';') {  // statement terminator: stop
        ++i;
        continue;
      }
      push(Token::Kind::kOperator, std::string(1, c), static_cast<int>(i));
      ++i;
      continue;
    }
    return InvalidArgumentError(
        StrCat("unexpected character '", std::string(1, c), "' at ", i));
  }
  Token end;
  end.kind = Token::Kind::kEnd;
  end.position = static_cast<int>(sql.size());
  tokens.push_back(std::move(end));
  return tokens;
}

}  // namespace fabric::vertica::sql
