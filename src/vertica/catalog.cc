#include "vertica/catalog.h"

#include "common/logging.h"
#include "common/string_util.h"

namespace fabric::vertica {

std::vector<HashRange> EvenRingPartition(int num_segments) {
  FABRIC_CHECK(num_segments > 0);
  std::vector<HashRange> ranges;
  ranges.reserve(num_segments);
  // Ring width per segment, computed in 64-bit arithmetic. The last
  // segment's upper bound is the wrap sentinel 0 (== 2^64).
  uint64_t step = UINT64_MAX / static_cast<uint64_t>(num_segments) + 1;
  for (int i = 0; i < num_segments; ++i) {
    HashRange range;
    range.lower = step * static_cast<uint64_t>(i);
    range.upper = (i + 1 == num_segments) ? 0 : step * (i + 1);
    ranges.push_back(range);
  }
  return ranges;
}

int RingSegmentOf(uint64_t h, int num_segments) {
  if (num_segments == 1) return 0;  // step would wrap to zero below
  uint64_t step = UINT64_MAX / static_cast<uint64_t>(num_segments) + 1;
  int segment = static_cast<int>(h / step);
  if (segment >= num_segments) segment = num_segments - 1;
  return segment;
}

Status Catalog::CreateTable(TableDef def) {
  std::string key = ToLower(def.name);
  if (tables_.count(key) > 0) {
    return AlreadyExistsError(StrCat("table '", def.name, "' exists"));
  }
  if (views_.count(key) > 0) {
    return AlreadyExistsError(StrCat("view '", def.name, "' exists"));
  }
  if (projections_.count(key) > 0) {
    return AlreadyExistsError(StrCat("projection '", def.name, "' exists"));
  }
  for (int c : def.segmentation.columns) {
    if (c < 0 || c >= def.schema.num_columns()) {
      return InvalidArgumentError("segmentation column out of range");
    }
  }
  tables_.emplace(key, std::move(def));
  return Status::OK();
}

Status Catalog::DropTable(const std::string& name) {
  std::string key = ToLower(name);
  if (tables_.erase(key) == 0) {
    return NotFoundError(StrCat("no table '", name, "'"));
  }
  // Cascade: projections cannot outlive their anchor.
  for (auto it = projections_.begin(); it != projections_.end();) {
    if (ToLower(it->second.anchor) == key) {
      it = projections_.erase(it);
    } else {
      ++it;
    }
  }
  return Status::OK();
}

Result<const TableDef*> Catalog::GetTable(const std::string& name) const {
  auto it = tables_.find(ToLower(name));
  if (it == tables_.end()) {
    return NotFoundError(StrCat("no table '", name, "'"));
  }
  return &it->second;
}

bool Catalog::HasTable(const std::string& name) const {
  return tables_.count(ToLower(name)) > 0;
}

Status Catalog::RenameTable(const std::string& from, const std::string& to) {
  auto it = tables_.find(ToLower(from));
  if (it == tables_.end()) {
    return NotFoundError(StrCat("no table '", from, "'"));
  }
  std::string to_key = ToLower(to);
  if (tables_.count(to_key) > 0 || views_.count(to_key) > 0 ||
      projections_.count(to_key) > 0) {
    return AlreadyExistsError(StrCat("'", to, "' exists"));
  }
  TableDef def = std::move(it->second);
  tables_.erase(it);
  def.name = to;
  tables_.emplace(to_key, std::move(def));
  for (auto& [key, proj] : projections_) {
    if (ToLower(proj.anchor) == ToLower(from)) proj.anchor = to;
  }
  return Status::OK();
}

Status Catalog::CreateView(ViewDef def) {
  std::string key = ToLower(def.name);
  if (views_.count(key) > 0 || tables_.count(key) > 0 ||
      projections_.count(key) > 0) {
    return AlreadyExistsError(StrCat("'", def.name, "' exists"));
  }
  views_.emplace(key, std::move(def));
  return Status::OK();
}

Status Catalog::DropView(const std::string& name) {
  if (views_.erase(ToLower(name)) == 0) {
    return NotFoundError(StrCat("no view '", name, "'"));
  }
  return Status::OK();
}

Result<const ViewDef*> Catalog::GetView(const std::string& name) const {
  auto it = views_.find(ToLower(name));
  if (it == views_.end()) {
    return NotFoundError(StrCat("no view '", name, "'"));
  }
  return &it->second;
}

bool Catalog::HasView(const std::string& name) const {
  return views_.count(ToLower(name)) > 0;
}

Status Catalog::CreateProjection(ProjectionDef def) {
  std::string key = ToLower(def.name);
  if (projections_.count(key) > 0 || tables_.count(key) > 0 ||
      views_.count(key) > 0) {
    return AlreadyExistsError(StrCat("'", def.name, "' exists"));
  }
  auto anchor = tables_.find(ToLower(def.anchor));
  if (anchor == tables_.end()) {
    return NotFoundError(StrCat("no table '", def.anchor, "'"));
  }
  int anchor_cols = anchor->second.schema.num_columns();
  for (int c : def.columns) {
    if (c < 0 || c >= anchor_cols) {
      return InvalidArgumentError("projection column out of range");
    }
  }
  int width = static_cast<int>(def.columns.size());
  for (int c : def.sort_columns) {
    if (c < 0 || c >= width) {
      return InvalidArgumentError("projection sort column out of range");
    }
  }
  for (int c : def.segmentation.columns) {
    if (c < 0 || c >= width) {
      return InvalidArgumentError("projection segmentation column out of range");
    }
  }
  projections_.emplace(key, std::move(def));
  return Status::OK();
}

Status Catalog::DropProjection(const std::string& name) {
  if (projections_.erase(ToLower(name)) == 0) {
    return NotFoundError(StrCat("no projection '", name, "'"));
  }
  return Status::OK();
}

Result<const ProjectionDef*> Catalog::GetProjection(
    const std::string& name) const {
  auto it = projections_.find(ToLower(name));
  if (it == projections_.end()) {
    return NotFoundError(StrCat("no projection '", name, "'"));
  }
  return &it->second;
}

bool Catalog::HasProjection(const std::string& name) const {
  return projections_.count(ToLower(name)) > 0;
}

Status Catalog::SetProjectionCreateEpoch(const std::string& name,
                                         storage::Epoch epoch) {
  auto it = projections_.find(ToLower(name));
  if (it == projections_.end()) {
    return NotFoundError(StrCat("no projection '", name, "'"));
  }
  it->second.create_epoch = epoch;
  return Status::OK();
}

std::vector<const ProjectionDef*> Catalog::ProjectionsOf(
    const std::string& table) const {
  std::vector<const ProjectionDef*> defs;
  std::string key = ToLower(table);
  for (const auto& [name, def] : projections_) {
    if (ToLower(def.anchor) == key) defs.push_back(&def);
  }
  return defs;
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [key, def] : tables_) names.push_back(def.name);
  return names;
}

std::vector<std::string> Catalog::ViewNames() const {
  std::vector<std::string> names;
  names.reserve(views_.size());
  for (const auto& [key, def] : views_) names.push_back(def.name);
  return names;
}

std::vector<std::string> Catalog::ProjectionNames() const {
  std::vector<std::string> names;
  names.reserve(projections_.size());
  for (const auto& [key, def] : projections_) names.push_back(def.name);
  return names;
}

}  // namespace fabric::vertica
