#include "vertica/tm/tuple_mover.h"

#include <algorithm>
#include <map>
#include <set>

#include "common/logging.h"
#include "common/string_util.h"
#include "net/host.h"
#include "obs/trace.h"
#include "vertica/database.h"

namespace fabric::vertica {

namespace {

// Size-tiered stratum of a container: 0 below strata_base_bytes, k below
// base * ratio^k, capped so absurd sizes cannot loop forever.
int Stratum(double raw_bytes, const TupleMoverConfig& config) {
  int k = 0;
  double bound = std::max(config.strata_base_bytes, 1.0);
  double ratio = std::max(config.strata_ratio, 2.0);
  while (raw_bytes >= bound && k < 48) {
    bound *= ratio;
    ++k;
  }
  return k;
}

// Committed-container indices per stratum that reached the merge
// threshold (ordered map: lowest stratum first).
std::map<int, std::vector<int>> MergeableStrata(
    const std::vector<storage::ContainerStats>& stats,
    const TupleMoverConfig& config) {
  std::map<int, std::vector<int>> strata;
  for (size_t i = 0; i < stats.size(); ++i) {
    if (!stats[i].committed) continue;
    strata[Stratum(stats[i].raw_bytes, config)].push_back(
        static_cast<int>(i));
  }
  for (auto it = strata.begin(); it != strata.end();) {
    if (static_cast<int>(it->second.size()) < config.strata_min_containers) {
      it = strata.erase(it);
    } else {
      ++it;
    }
  }
  return strata;
}

}  // namespace

TupleMover::TupleMover(Database* db, TupleMoverConfig config)
    : db_(db),
      config_(config),
      moveout_(static_cast<size_t>(db->num_nodes())),
      mergeout_(static_cast<size_t>(db->num_nodes())),
      wos_relief_(std::make_unique<sim::Condition>(db->engine())) {}

void TupleMover::NotifyCommit() {
  if (!config_.enabled) return;
  for (int n = 0; n < db_->num_nodes(); ++n) {
    if (!db_->node_up(n)) continue;
    ArmMoveout(n);
    ArmMergeout(n);
  }
  ArmAhm();
  UpdateWosGauge();
}

void TupleMover::NotifyTopology() {
  // Stalled writers re-check their predicate (a dead host unblocks its
  // writers; the statement then fails on the broken session/copy path).
  wos_relief_->NotifyAll();
  if (!config_.enabled) return;
  for (int n = 0; n < db_->num_nodes(); ++n) {
    if (!db_->node_up(n)) continue;
    ArmMoveout(n);
    ArmMergeout(n);
  }
  ArmAhm();
}

Status TupleMover::AdmitWos(sim::Process& self, const std::string& table,
                            storage::SegmentStore* store, int host) {
  if (!config_.enabled || config_.wos_hard_cap_batches <= 0) {
    return Status::OK();
  }
  if (store->num_committed_wos_batches() < config_.wos_hard_cap_batches) {
    return Status::OK();
  }
  // Over the cap: moveout is necessarily armed (the commit that pushed
  // the count to the cap armed it), so wait for it to drain the WOS.
  double stalled_at = db_->engine()->now();
  obs::TraceEvent("tm", "wos.stall",
                  {{"table", table}, {"node", static_cast<int64_t>(host)}});
  Status waited = wos_relief_->WaitUntil(self, [this, store, host] {
    return !db_->node_up(host) ||
           store->num_committed_wos_batches() < config_.wos_hard_cap_batches;
  });
  double stall = db_->engine()->now() - stalled_at;
  if (stall > 0) obs::IncrCounter("vertica.wos_stall_ms", stall * 1e3);
  return waited;
}

bool TupleMover::MoveoutWorkPending(int node) const {
  for (const Database::HostedStore& hs : db_->HostedStores(node)) {
    int committed = hs.store->num_committed_wos_batches();
    if (committed >= config_.moveout_min_batches) return true;
    if (config_.wos_hard_cap_batches > 0 &&
        committed >= config_.wos_hard_cap_batches) {
      return true;
    }
  }
  return false;
}

bool TupleMover::MergeoutWorkPending(int node) const {
  for (const Database::HostedStore& hs : db_->HostedStores(node)) {
    if (!MergeableStrata(hs.store->RosStats(), config_).empty()) return true;
  }
  return false;
}

void TupleMover::ArmMoveout(int node) {
  if (moveout_[node].armed || !MoveoutWorkPending(node)) return;
  moveout_[node].armed = true;
  db_->engine()->Spawn(StrCat("tm:moveout:n", node),
                       [this, node](sim::Process& self) {
                         RunMoveout(self, node);
                       });
}

void TupleMover::ArmMergeout(int node) {
  if (mergeout_[node].armed || !MergeoutWorkPending(node)) return;
  mergeout_[node].armed = true;
  db_->engine()->Spawn(StrCat("tm:mergeout:n", node),
                       [this, node](sim::Process& self) {
                         RunMergeout(self, node);
                       });
}

void TupleMover::ArmAhm() {
  if (ahm_armed_) return;
  ahm_armed_ = true;
  db_->engine()->Spawn("tm:ahm", [this](sim::Process& self) { RunAhm(self); });
}

void TupleMover::RunMoveout(sim::Process& self, int node) {
  Status slept = self.Sleep(config_.moveout_interval);
  moveout_[node].armed = false;
  if (!slept.ok()) return;
  if (!db_->node_up(node)) {
    // Paused on a non-UP node; recovery completion re-arms via
    // NotifyTopology. Writers must still re-check (their host is gone).
    wos_relief_->NotifyAll();
    return;
  }
  // Host-side, step-atomic drain of every pressured hosted store, then
  // one CPU charge for the rewrite — mutating before charging keeps the
  // store state consistent with any scan interleaved during the charge.
  double drained_bytes = 0;
  int64_t drained_batches = 0;
  for (const Database::HostedStore& hs : db_->HostedStores(node)) {
    int committed = hs.store->num_committed_wos_batches();
    bool over_cap = config_.wos_hard_cap_batches > 0 &&
                    committed >= config_.wos_hard_cap_batches;
    if (committed < config_.moveout_min_batches && !over_cap) continue;
    double bytes =
        hs.store->CommittedWosRawBytes() * db_->EffectiveScale(hs.table);
    Status moved = hs.store->Moveout();
    FABRIC_CHECK(moved.ok()) << moved.ToString();
    drained_bytes += bytes;
    drained_batches += committed;
    ++moveout_[node].runs;
    moveout_[node].bytes += bytes;
    obs::IncrCounter("tm.moveout_runs");
  }
  wos_relief_->NotifyAll();
  UpdateWosGauge();
  if (drained_batches > 0) {
    obs::TraceEvent("tm", "moveout",
                    {{"node", static_cast<int64_t>(node)},
                     {"batches", drained_batches},
                     {"bytes", drained_bytes}});
    // Re-encoding the drained rows into a ROS container costs CPU on the
    // hosting node (ignore failure: a kill mid-charge loses nothing, the
    // store already moved).
    Status charged =
        net::RunCpu(self, db_->network(), db_->node_host(node),
                    drained_bytes * db_->cost().scan_cpu_per_byte);
    (void)charged;  // a kill mid-charge loses nothing, the store moved
    ArmMergeout(node);
  }
  ArmMoveout(node);
}

void TupleMover::RunMergeout(sim::Process& self, int node) {
  Status slept = self.Sleep(config_.mergeout_interval);
  mergeout_[node].armed = false;
  if (!slept.ok()) return;
  if (!db_->node_up(node)) return;
  double merged_bytes = 0;
  int64_t merges = 0;
  for (const Database::HostedStore& hs : db_->HostedStores(node)) {
    // One merge per stratum per pass. Every merge invalidates container
    // indices, so re-snapshot the stats after each and track which strata
    // already ran.
    std::set<int> done;
    while (true) {
      std::map<int, std::vector<int>> strata =
          MergeableStrata(hs.store->RosStats(), config_);
      auto it = strata.begin();
      while (it != strata.end() && done.count(it->first) > 0) ++it;
      if (it == strata.end()) break;
      done.insert(it->first);
      std::vector<int>& members = it->second;
      if (static_cast<int>(members.size()) > config_.strata_max_fanin) {
        members.resize(static_cast<size_t>(config_.strata_max_fanin));
      }
      Result<double> merged = hs.store->MergeRosContainers(members);
      FABRIC_CHECK(merged.ok()) << merged.status();
      merged_bytes += *merged * db_->EffectiveScale(hs.table);
      ++merges;
      ++mergeout_[node].runs;
      mergeout_[node].bytes += *merged * db_->EffectiveScale(hs.table);
    }
  }
  if (merges > 0) {
    obs::IncrCounter("tm.mergeout_runs", static_cast<double>(merges));
    obs::IncrCounter("tm.mergeout_bytes", merged_bytes);
    obs::TraceEvent("tm", "mergeout",
                    {{"node", static_cast<int64_t>(node)},
                     {"merges", merges},
                     {"bytes", merged_bytes}});
    // Mergeout reads and rewrites every merged byte.
    Status charged =
        net::RunCpu(self, db_->network(), db_->node_host(node),
                    2 * merged_bytes * db_->cost().scan_cpu_per_byte);
    (void)charged;
  }
  ArmMergeout(node);
}

void TupleMover::RunAhm(sim::Process& self) {
  Status slept = self.Sleep(config_.ahm_interval);
  ahm_armed_ = false;
  if (!slept.ok()) return;
  // AHM = min(retention bound, oldest pinned snapshot, oldest down-node
  // epoch); monotone non-decreasing.
  storage::Epoch current = db_->current_epoch();
  storage::Epoch candidate =
      current > config_.retention_epochs ? current - config_.retention_epochs
                                         : 0;
  candidate = std::min(candidate, db_->MinPinnedEpoch());
  candidate = std::min(candidate, db_->MinNodeDownEpoch());
  if (candidate <= ahm_) return;
  ahm_ = candidate;
  ++ahm_advances_;
  obs::IncrCounter("tm.ahm_advances");
  obs::TraceEvent("tm", "ahm.advance",
                  {{"ahm", static_cast<int64_t>(ahm_)},
                   {"epoch", static_cast<int64_t>(current)}});
  db_->TrimEpochBookkeeping(ahm_);
  if (!config_.purge) return;
  // Purge every UP-hosted copy in one engine step: both UP copies of a
  // buddy pair purge together, so quiesced pairs keep equal fingerprints.
  // Copies on non-UP nodes are skipped — recovery's final atomic clone
  // re-converges them.
  int64_t purged = 0;
  double purged_scaled_rows = 0;
  std::vector<double> host_bytes(static_cast<size_t>(db_->num_nodes()), 0.0);
  for (int n = 0; n < db_->num_nodes(); ++n) {
    if (!db_->node_up(n)) continue;
    for (const Database::HostedStore& hs : db_->HostedStores(n)) {
      double before = hs.store->TotalRawBytes();
      Result<int64_t> dropped = hs.store->PurgeDeletedRows(ahm_);
      FABRIC_CHECK(dropped.ok()) << dropped.status();
      if (*dropped == 0) continue;
      purged += *dropped;
      purged_scaled_rows +=
          static_cast<double>(*dropped) * db_->EffectiveScale(hs.table);
      // Rewriting a container costs a read+write of its surviving bytes
      // plus the dropped ones — approximate with the pre-purge size.
      host_bytes[n] += before * db_->EffectiveScale(hs.table);
    }
  }
  if (purged > 0) {
    purged_rows_ += purged;
    obs::IncrCounter("tm.purged_rows", purged_scaled_rows);
    obs::TraceEvent("tm", "purge",
                    {{"ahm", static_cast<int64_t>(ahm_)},
                     {"rows", purged}});
    for (int n = 0; n < db_->num_nodes(); ++n) {
      if (host_bytes[n] <= 0) continue;
      Status charged =
          net::RunCpu(self, db_->network(), db_->node_host(n),
                      2 * host_bytes[n] * db_->cost().scan_cpu_per_byte);
      (void)charged;
    }
  }
}

void TupleMover::UpdateWosGauge() {
  obs::SetGauge("vertica.wos_batches",
                static_cast<double>(db_->TotalWosBatches()));
}

}  // namespace fabric::vertica
