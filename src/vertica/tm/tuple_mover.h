#ifndef FABRIC_VERTICA_TM_TUPLE_MOVER_H_
#define FABRIC_VERTICA_TM_TUPLE_MOVER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "sim/waitable.h"
#include "storage/segment_store.h"

namespace fabric::vertica {

class Database;

// Knobs for the Tuple Mover background service. Intervals are virtual
// seconds; byte thresholds are raw (unscaled) bytes, since container
// counts and layouts are real quantities in the simulation.
struct TupleMoverConfig {
  bool enabled = true;

  // ---- moveout (WOS -> ROS), triggered by WOS pressure.
  double moveout_interval = 0.1;
  // Committed WOS batches in a store before a pass bothers draining it.
  int moveout_min_batches = 1;
  // Hard WOS cap: INSERT/COPY admission into a store stalls while its
  // committed WOS batch count is at or above this. 0 disables the cap.
  // Only committed batches count — they are what moveout can drain, so a
  // single large transaction can never stall itself.
  int wos_hard_cap_batches = 64;

  // ---- mergeout: size-tiered ROS compaction. Containers are bucketed
  // into geometric strata by raw size (stratum 0 holds containers below
  // strata_base_bytes, stratum k below base * ratio^k); when a stratum
  // accumulates strata_min_containers, one merge of up to strata_max_fanin
  // oldest members runs per stratum per pass.
  double mergeout_interval = 0.25;
  int strata_min_containers = 4;
  int strata_max_fanin = 16;
  double strata_base_bytes = 256e3;
  double strata_ratio = 4.0;

  // ---- AHM advancement, delete purge and epoch GC. The Ancient History
  // Mark is min(current_epoch - retention_epochs, oldest pinned snapshot,
  // oldest down-node epoch); it only moves forward. AT EPOCH below the
  // AHM fails with HISTORY_PURGED.
  double ahm_interval = 0.5;
  uint64_t retention_epochs = 1000;
  bool purge = true;  // rewrite containers dropping rows deleted <= AHM
};

// Vertica's Tuple Mover: the always-on storage-management service that
// keeps WOS batch counts and ROS container counts bounded under sustained
// ingest. Runs as demand-driven background tasks on the sim engine's
// virtual clock — a commit arms per-node moveout/mergeout ticks and a
// cluster AHM tick; each tick sleeps its interval, does bounded host-side
// work, charges the CPU to its node, and re-arms only while eligible work
// remains, so an idle database quiesces and Engine::Run() terminates.
//
// Crash coordination: ticks skip nodes that are not UP (a RECOVERING
// store's content is owned by the recovery process), and purge is applied
// to all UP copies of a table in one engine step so buddy pairs never
// diverge by a purge. Moveout/mergeout are content-preserving, so the
// layout-blind ContentFingerprint is invariant under them and divergent
// buddy compaction is harmless to recovery.
class TupleMover {
 public:
  TupleMover(Database* db, TupleMoverConfig config);

  const TupleMoverConfig& config() const { return config_; }
  storage::Epoch ahm() const { return ahm_; }

  // Called by Database::CommitTxnInternal after an epoch advances: arms
  // the background ticks that will drain the new work.
  void NotifyCommit();
  // Called on node kill and on recovery completion: wakes writers stalled
  // on WOS backpressure (their predicate re-checks node state) and
  // re-arms ticks, since AHM inputs and hosted-store sets changed.
  void NotifyTopology();

  // WOS admission control, called by INSERT/COPY before InsertPending
  // into `store` hosted on `host`. Blocks while the store's committed WOS
  // batch count is at or above the hard cap; the stall is accounted to
  // the vertica.wos_stall_ms counter.
  Status AdmitWos(sim::Process& self, const std::string& table,
                  storage::SegmentStore* store, int host);

  // ------------------------------------------------ v_monitor.tuple_mover
  struct TaskStats {
    bool armed = false;
    int64_t runs = 0;
    double bytes = 0;
  };
  const TaskStats& moveout_stats(int node) const { return moveout_[node]; }
  const TaskStats& mergeout_stats(int node) const { return mergeout_[node]; }
  int64_t ahm_advances() const { return ahm_advances_; }
  int64_t purged_rows() const { return purged_rows_; }

 private:
  void ArmMoveout(int node);
  void ArmMergeout(int node);
  void ArmAhm();
  void RunMoveout(sim::Process& self, int node);
  void RunMergeout(sim::Process& self, int node);
  void RunAhm(sim::Process& self);
  // True when some hosted store of `node` has enough committed WOS
  // batches / a mergeable stratum.
  bool MoveoutWorkPending(int node) const;
  bool MergeoutWorkPending(int node) const;
  void UpdateWosGauge();

  Database* db_;
  TupleMoverConfig config_;
  std::vector<TaskStats> moveout_;
  std::vector<TaskStats> mergeout_;
  bool ahm_armed_ = false;
  storage::Epoch ahm_ = 0;
  int64_t ahm_advances_ = 0;
  int64_t purged_rows_ = 0;
  // Writers stalled on the WOS hard cap; notified after every moveout
  // pass and on topology changes.
  std::unique_ptr<sim::Condition> wos_relief_;
};

}  // namespace fabric::vertica

#endif  // FABRIC_VERTICA_TM_TUPLE_MOVER_H_
