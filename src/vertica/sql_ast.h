#ifndef FABRIC_VERTICA_SQL_AST_H_
#define FABRIC_VERTICA_SQL_AST_H_

#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "storage/value.h"

namespace fabric::vertica::sql {

// ---------------------------------------------------------- expressions

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

// One SQL scalar expression node. A single struct (rather than a class
// hierarchy) keeps the parser and evaluator compact; `kind` selects which
// fields are meaningful.
struct Expr {
  enum class Kind {
    kLiteral,    // value
    kColumnRef,  // column
    kUnary,      // op in {"-", "NOT"}, args[0]
    kBinary,     // op in {OR,AND,=,<>,<,<=,>,>=,+,-,*,/,%,||}, args[0..1]
    kIsNull,     // args[0] IS [NOT] NULL (negated)
    kCall,       // function(args...) [USING PARAMETERS name=literal,...]
  };

  Kind kind = Kind::kLiteral;
  storage::Value literal;
  std::string column;
  std::string op;
  std::string function;  // upper-cased
  bool negated = false;  // IS NOT NULL
  std::vector<ExprPtr> args;
  std::map<std::string, storage::Value> parameters;  // USING PARAMETERS

  static ExprPtr Literal(storage::Value v);
  static ExprPtr ColumnRef(std::string name);
  static ExprPtr Unary(std::string op, ExprPtr operand);
  static ExprPtr Binary(std::string op, ExprPtr lhs, ExprPtr rhs);
  static ExprPtr IsNull(ExprPtr operand, bool negated);
  static ExprPtr Call(std::string function, std::vector<ExprPtr> args);

  // Re-renders the expression as SQL (used to ship predicates between
  // layers and for diagnostics). Deterministic and re-parsable.
  std::string ToSql() const;

  ExprPtr Clone() const;
};

// ----------------------------------------------------------- statements

struct SelectItem {
  bool star = false;  // SELECT *
  ExprPtr expr;       // null when star
  std::string alias;  // optional
};

struct OrderItem {
  std::string column;
  bool descending = false;
};

struct SelectStmt {
  std::vector<SelectItem> items;
  std::string from;        // table/view/system-table; empty: FROM-less
  std::string join;        // INNER JOIN partner (empty: none)
  ExprPtr join_on;         // the ON condition (set iff join is set)
  ExprPtr where;           // may be null
  std::vector<std::string> group_by;
  std::vector<OrderItem> order_by;
  int64_t limit = -1;      // -1: none
  int64_t at_epoch = -1;   // -1: latest committed epoch

  std::string ToSql() const;
};

struct CreateTableStmt {
  std::string name;
  bool if_not_exists = false;
  std::vector<std::pair<std::string, storage::DataType>> columns;
  std::vector<std::string> segmentation_columns;  // SEGMENTED BY HASH(...)
  bool unsegmented = false;                       // UNSEGMENTED ALL NODES
};

struct CreateViewStmt {
  std::string name;
  std::unique_ptr<SelectStmt> select;
};

// CREATE PROJECTION name AS SELECT cols FROM t ORDER BY k1, k2
//   [SEGMENTED BY HASH(col, ...) | UNSEGMENTED]
// Column lists are names; the analyzer resolves them against the anchor
// schema. No ORDER BY means the projection keeps insertion order.
struct CreateProjectionStmt {
  std::string name;
  std::string anchor;                 // FROM table
  std::vector<std::string> columns;   // selected columns (empty: all)
  bool star = false;                  // SELECT *
  std::vector<std::string> order_by;  // sort columns, major first
  std::vector<std::string> segmentation_columns;  // SEGMENTED BY HASH(...)
  bool unsegmented = false;

  std::string ToSql() const;
};

struct DropStmt {
  bool is_view = false;
  bool is_projection = false;
  bool if_exists = false;
  std::string name;
};

struct RenameTableStmt {
  std::string from;
  std::string to;
  // ALTER TABLE a RENAME TO b REPLACE: atomically drops any existing b
  // first (the S2V overwrite-commit swap).
  bool replace = false;
};

struct TruncateStmt {
  std::string table;
};

struct InsertStmt {
  std::string table;
  std::vector<std::string> columns;        // optional explicit column list
  std::vector<std::vector<ExprPtr>> rows;  // VALUES (...), (...)
  std::unique_ptr<SelectStmt> select;      // INSERT ... SELECT
  bool direct = false;  // /*+ DIRECT */ hint: straight to ROS
};

struct UpdateStmt {
  std::string table;
  std::vector<std::pair<std::string, ExprPtr>> assignments;
  ExprPtr where;  // may be null
};

struct DeleteStmt {
  std::string table;
  ExprPtr where;  // may be null
};

struct TxnStmt {
  enum class Kind { kBegin, kCommit, kRollback };
  Kind kind;
};

// EXPLAIN SELECT ...: runs the projection planner only and returns the
// chosen projection, its cost and every candidate as one text column.
struct ExplainStmt {
  std::unique_ptr<SelectStmt> select;
};

using Statement =
    std::variant<SelectStmt, CreateTableStmt, CreateViewStmt,
                 CreateProjectionStmt, DropStmt, RenameTableStmt,
                 TruncateStmt, InsertStmt, UpdateStmt, DeleteStmt, TxnStmt,
                 ExplainStmt>;

}  // namespace fabric::vertica::sql

#endif  // FABRIC_VERTICA_SQL_AST_H_
