#include "vertica/pipeline.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "common/string_util.h"

namespace fabric::vertica {
namespace {

using storage::DataType;
using storage::Schema;
using storage::Value;

bool IsNumeric(DataType t) { return t != DataType::kVarchar; }

// Builds the flat node vector for one expression tree. Every rule here
// either reproduces the interpreter's typing exactly or refuses: an
// expression whose interpreted evaluation could error on a non-null
// value (NOT over a non-bool, LENGTH over a number, varchar arithmetic,
// mixed varchar/numeric comparison) is rejected so the interpreter stays
// the one that raises the error.
class Lowering {
 public:
  explicit Lowering(const Schema& schema) : schema_(schema) {}

  // Returns the root node index, or -1 when not compilable.
  int Lower(const sql::Expr& e) {
    switch (e.kind) {
      case sql::Expr::Kind::kLiteral: {
        // NULL literals have no static type; leave them interpreted.
        if (e.literal.is_null()) return -1;
        exec::Node n;
        n.op = exec::Node::Op::kConst;
        n.type = e.literal.type();
        n.constant = e.literal;
        return Push(std::move(n));
      }
      case sql::Expr::Kind::kColumnRef: {
        auto idx = schema_.IndexOf(e.column);
        if (!idx.ok()) return -1;
        exec::Node n;
        n.op = exec::Node::Op::kColumn;
        n.type = schema_.column(*idx).type;
        n.column = *idx;
        return Push(std::move(n));
      }
      case sql::Expr::Kind::kUnary: {
        if (e.args.size() != 1) return -1;
        int a = Lower(*e.args[0]);
        if (a < 0) return -1;
        exec::Node n;
        n.a = a;
        if (e.op == "NOT") {
          if (nodes_[a].type != DataType::kBool) return -1;
          n.op = exec::Node::Op::kNot;
          n.type = DataType::kBool;
        } else {  // unary minus
          if (!IsNumeric(nodes_[a].type)) return -1;
          n.op = exec::Node::Op::kNegate;
          n.type = nodes_[a].type == DataType::kInt64 ? DataType::kInt64
                                                      : DataType::kFloat64;
        }
        return Push(std::move(n));
      }
      case sql::Expr::Kind::kIsNull: {
        if (e.args.size() != 1) return -1;
        int a = Lower(*e.args[0]);
        if (a < 0) return -1;
        exec::Node n;
        n.op = exec::Node::Op::kIsNull;
        n.type = DataType::kBool;
        n.a = a;
        n.negated = e.negated;
        return Push(std::move(n));
      }
      case sql::Expr::Kind::kBinary:
        return LowerBinary(e);
      case sql::Expr::Kind::kCall:
        return LowerCall(e);
    }
    return -1;
  }

  std::vector<exec::Node> Take() { return std::move(nodes_); }

 private:
  int LowerBinary(const sql::Expr& e) {
    if (e.args.size() != 2) return -1;
    const std::string& op = e.op;
    int a = Lower(*e.args[0]);
    if (a < 0) return -1;
    int b = Lower(*e.args[1]);
    if (b < 0) return -1;
    DataType ta = nodes_[a].type;
    DataType tb = nodes_[b].type;
    exec::Node n;
    n.a = a;
    n.b = b;
    if (op == "AND" || op == "OR") {
      if (ta != DataType::kBool || tb != DataType::kBool) return -1;
      n.op = op == "AND" ? exec::Node::Op::kAnd : exec::Node::Op::kOr;
      n.type = DataType::kBool;
      return Push(std::move(n));
    }
    if (op == "=" || op == "<>" || op == "<" || op == "<=" || op == ">" ||
        op == ">=") {
      bool both_str =
          ta == DataType::kVarchar && tb == DataType::kVarchar;
      if (!both_str && (!IsNumeric(ta) || !IsNumeric(tb))) return -1;
      n.op = exec::Node::Op::kCompare;
      n.type = DataType::kBool;
      n.string_compare = both_str;
      if (op == "=") n.cmp = exec::Node::Cmp::kEq;
      else if (op == "<>") n.cmp = exec::Node::Cmp::kNe;
      else if (op == "<") n.cmp = exec::Node::Cmp::kLt;
      else if (op == "<=") n.cmp = exec::Node::Cmp::kLe;
      else if (op == ">") n.cmp = exec::Node::Cmp::kGt;
      else n.cmp = exec::Node::Cmp::kGe;
      return Push(std::move(n));
    }
    if (op == "||") {
      // The interpreter concatenates display strings of any type; the
      // compiled kernel keeps only the varchar-varchar shape, where the
      // display string is the string itself.
      if (ta != DataType::kVarchar || tb != DataType::kVarchar) return -1;
      n.op = exec::Node::Op::kConcat;
      n.type = DataType::kVarchar;
      return Push(std::move(n));
    }
    if (op == "%") {
      if (ta != DataType::kInt64 || tb != DataType::kInt64) return -1;
      n.op = exec::Node::Op::kMod;
      n.type = DataType::kInt64;
      return Push(std::move(n));
    }
    if (op == "/") {
      if (!IsNumeric(ta) || !IsNumeric(tb)) return -1;
      n.op = exec::Node::Op::kDiv;
      n.type = DataType::kFloat64;
      return Push(std::move(n));
    }
    if (op == "+" || op == "-" || op == "*") {
      if (!IsNumeric(ta) || !IsNumeric(tb)) return -1;
      n.op = op == "+" ? exec::Node::Op::kAdd
                       : (op == "-" ? exec::Node::Op::kSub
                                    : exec::Node::Op::kMul);
      n.int_arith =
          ta == DataType::kInt64 && tb == DataType::kInt64;
      n.type = n.int_arith ? DataType::kInt64 : DataType::kFloat64;
      return Push(std::move(n));
    }
    return -1;
  }

  int LowerCall(const sql::Expr& e) {
    const std::string& fn = e.function;
    // HASH, scalar UDx and aggregates stay interpreted (HASH for its
    // ring seeding, UDx because resolver calls are opaque, aggregates
    // because LowerSelect intercepts them above expression level).
    if (fn == "ABS") {
      if (e.args.size() != 1) return -1;
      int a = Lower(*e.args[0]);
      if (a < 0 || !IsNumeric(nodes_[a].type)) return -1;
      exec::Node n;
      n.op = exec::Node::Op::kAbs;
      n.type = nodes_[a].type == DataType::kInt64 ? DataType::kInt64
                                                  : DataType::kFloat64;
      n.a = a;
      return Push(std::move(n));
    }
    if (fn == "FLOOR" || fn == "CEIL" || fn == "CEILING") {
      if (e.args.size() != 1) return -1;
      int a = Lower(*e.args[0]);
      if (a < 0 || !IsNumeric(nodes_[a].type)) return -1;
      exec::Node n;
      n.op = fn == "FLOOR" ? exec::Node::Op::kFloor : exec::Node::Op::kCeil;
      n.type = DataType::kFloat64;
      n.a = a;
      return Push(std::move(n));
    }
    if (fn == "LENGTH") {
      if (e.args.size() != 1) return -1;
      int a = Lower(*e.args[0]);
      if (a < 0 || nodes_[a].type != DataType::kVarchar) return -1;
      exec::Node n;
      n.op = exec::Node::Op::kLength;
      n.type = DataType::kInt64;
      n.a = a;
      return Push(std::move(n));
    }
    if (fn == "UPPER" || fn == "LOWER") {
      if (e.args.size() != 1) return -1;
      int a = Lower(*e.args[0]);
      if (a < 0 || nodes_[a].type != DataType::kVarchar) return -1;
      exec::Node n;
      n.op = fn == "UPPER" ? exec::Node::Op::kUpper : exec::Node::Op::kLower;
      n.type = DataType::kVarchar;
      n.a = a;
      return Push(std::move(n));
    }
    return -1;
  }

  int Push(exec::Node n) {
    nodes_.push_back(std::move(n));
    return static_cast<int>(nodes_.size()) - 1;
  }

  const Schema& schema_;
  std::vector<exec::Node> nodes_;
};

exec::AggOutput::Fn BuiltinAggFn(const std::string& name) {
  if (name == "SUM") return exec::AggOutput::Fn::kSum;
  if (name == "AVG") return exec::AggOutput::Fn::kAvg;
  if (name == "MIN") return exec::AggOutput::Fn::kMin;
  if (name == "MAX") return exec::AggOutput::Fn::kMax;
  return exec::AggOutput::Fn::kCount;
}

// Lowers one expression into `cs`, appending its program. Returns the
// program index or -1.
int LowerProgramInto(const sql::Expr& e, const Schema& schema,
                     exec::CompiledSelect* cs) {
  Lowering lowering(schema);
  if (lowering.Lower(e) < 0) return -1;
  exec::Program p;
  p.nodes = lowering.Take();
  cs->programs.push_back(std::move(p));
  return static_cast<int>(cs->programs.size()) - 1;
}

}  // namespace

std::optional<exec::Program> LowerExpr(const sql::Expr& expr,
                                       const Schema& schema) {
  Lowering lowering(schema);
  if (lowering.Lower(expr) < 0) return std::nullopt;
  exec::Program p;
  p.nodes = lowering.Take();
  return p;
}

std::optional<CompiledQuery> LowerSelect(
    const sql::SelectStmt& select, const Schema& schema,
    const sql::UdxResolver* udx, const sql::AggregateUdxResolver* agg_udx) {
  CompiledQuery q;
  exec::CompiledSelect& cs = q.select;

  if (select.where != nullptr) {
    auto filter = LowerExpr(*select.where, schema);
    if (!filter.has_value() ||
        filter->out_type() != DataType::kBool) {
      return std::nullopt;
    }
    cs.filter = std::move(*filter);
  }

  cs.aggregate = !select.group_by.empty();
  for (const sql::SelectItem& item : select.items) {
    if (!item.star && sql::ContainsAggregate(*item.expr, agg_udx)) {
      cs.aggregate = true;
    }
  }

  std::vector<storage::ColumnDef> out_columns;
  if (!cs.aggregate) {
    int stars = 0;
    int placeholders = 0;
    for (size_t i = 0; i < select.items.size(); ++i) {
      const sql::SelectItem& item = select.items[i];
      if (item.star) {
        // The interpreter's star placeholders copy input columns by a
        // per-row running cursor; a single star is the only shape where
        // that cursor provably stays inside the row.
        if (++stars > 1) return std::nullopt;
        for (int c = 0; c < schema.num_columns(); ++c) {
          out_columns.push_back(schema.column(c));
          exec::CompiledSelect::Output o;
          o.passthrough = placeholders++;
          cs.outputs.push_back(o);
        }
        continue;
      }
      int p = LowerProgramInto(*item.expr, schema, &cs);
      if (p < 0) return std::nullopt;
      exec::CompiledSelect::Output o;
      o.program = p;
      cs.outputs.push_back(o);
      out_columns.push_back({sql::SelectItemName(item, static_cast<int>(i)),
                             sql::InferType(*item.expr, schema)});
    }
    q.out_schema = Schema(std::move(out_columns));
    return q;
  }

  // Aggregate body: only the interpreter's happy path compiles — group
  // columns listed in GROUP BY and simple aggregate calls. Anything the
  // interpreter would reject with a typed error is left to it.
  for (const std::string& name : select.group_by) {
    auto idx = schema.IndexOf(name);
    if (!idx.ok()) return std::nullopt;
    cs.group_cols.push_back(*idx);
  }
  for (size_t i = 0; i < select.items.size(); ++i) {
    const sql::SelectItem& item = select.items[i];
    if (item.star) return std::nullopt;
    const sql::Expr& e = *item.expr;
    exec::AggOutput agg;
    if (e.kind == sql::Expr::Kind::kColumnRef) {
      auto idx = schema.IndexOf(e.column);
      if (!idx.ok()) return std::nullopt;
      auto it = std::find(cs.group_cols.begin(), cs.group_cols.end(), *idx);
      if (it == cs.group_cols.end()) return std::nullopt;
      agg.is_group = true;
      agg.group_pos = static_cast<int>(it - cs.group_cols.begin());
      out_columns.push_back({sql::SelectItemName(item, static_cast<int>(i)),
                             schema.column(*idx).type});
    } else if (e.kind == sql::Expr::Kind::kCall &&
               sql::IsAggregateFunction(e.function)) {
      agg.fn = BuiltinAggFn(e.function);
      if (!e.args.empty()) {
        agg.arg = LowerProgramInto(*e.args[0], schema, &cs);
        if (agg.arg < 0) return std::nullopt;
      }
      out_columns.push_back({sql::SelectItemName(item, static_cast<int>(i)),
                             sql::InferType(e, schema)});
    } else if (e.kind == sql::Expr::Kind::kCall && agg_udx != nullptr &&
               *agg_udx && (*agg_udx)(e.function) != nullptr) {
      const sql::AggregateUdx* udx_def = (*agg_udx)(e.function);
      if (e.args.empty()) return std::nullopt;
      agg.fn = exec::AggOutput::Fn::kUdx;
      agg.arg = LowerProgramInto(*e.args[0], schema, &cs);
      if (agg.arg < 0) return std::nullopt;
      // Extra arguments are per-query constants handed to init, exactly
      // as the interpreter evaluates them (no row context).
      std::vector<Value> extra;
      for (size_t a = 1; a < e.args.size(); ++a) {
        sql::EvalContext const_context;
        const_context.udx = udx;
        auto v = sql::Eval(*e.args[a], const_context);
        if (!v.ok()) return std::nullopt;
        extra.push_back(std::move(*v));
      }
      auto init = udx_def->init(extra);
      if (!init.ok()) return std::nullopt;
      agg.init_state = std::move(*init);
      agg.udx.update = udx_def->update;
      agg.udx.finalize = udx_def->finalize;
      out_columns.push_back({sql::SelectItemName(item, static_cast<int>(i)),
                             udx_def->output_type});
    } else {
      return std::nullopt;
    }
    cs.agg_outputs.push_back(std::move(agg));
  }
  q.out_schema = Schema(std::move(out_columns));
  return q;
}

namespace {

std::string SelectFingerprint(const sql::SelectStmt& select,
                              const Schema& schema) {
  std::string key = StrCat(schema.ToDdlBody(), "\n", select.ToSql());
  // ToSql is the statement identity; aliases are appended explicitly in
  // case a rendering ever elides them (they name output columns).
  for (const sql::SelectItem& item : select.items) {
    key += StrCat("|", item.alias);
  }
  return key;
}

}  // namespace

std::shared_ptr<const CompiledQuery> PipelineCompiler::GetOrCompileSelect(
    const sql::SelectStmt& select, const Schema& schema,
    const sql::UdxResolver* udx, const sql::AggregateUdxResolver* agg_udx) {
  if (!enabled_) return nullptr;
  std::string key = SelectFingerprint(select, schema);
  auto it = selects_.find(key);
  if (it != selects_.end()) {
    ++cache_hits_;
    return it->second;
  }
  ++cache_misses_;
  auto lowered = LowerSelect(select, schema, udx, agg_udx);
  std::shared_ptr<const CompiledQuery> compiled =
      lowered.has_value()
          ? std::make_shared<const CompiledQuery>(std::move(*lowered))
          : nullptr;
  selects_.emplace(std::move(key), compiled);
  return compiled;
}

std::shared_ptr<const exec::Program> PipelineCompiler::GetOrCompilePredicate(
    const sql::Expr& expr, const Schema& schema) {
  if (!enabled_) return nullptr;
  std::string key = StrCat(schema.ToDdlBody(), "\n", expr.ToSql());
  auto it = predicates_.find(key);
  if (it != predicates_.end()) {
    ++cache_hits_;
    return it->second;
  }
  ++cache_misses_;
  auto lowered = LowerExpr(expr, schema);
  std::shared_ptr<const exec::Program> compiled;
  if (lowered.has_value() &&
      lowered->out_type() == DataType::kBool) {
    compiled = std::make_shared<const exec::Program>(std::move(*lowered));
  }
  predicates_.emplace(std::move(key), compiled);
  return compiled;
}

}  // namespace fabric::vertica
