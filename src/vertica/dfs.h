#ifndef FABRIC_VERTICA_DFS_H_
#define FABRIC_VERTICA_DFS_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"

namespace fabric::vertica {

// Vertica's internal distributed file system, the storage target for
// deployed PMML models (Section 3.3: models are stored in a DFS rather
// than a table because model shapes vary). Blobs are replicated across
// the cluster conceptually; the simulation keeps one logical copy and
// charges network cost at the deployment layer.
class Dfs {
 public:
  struct FileInfo {
    std::string path;
    double size = 0;
  };

  Status Put(const std::string& path, std::string contents);
  Result<std::string> Get(const std::string& path) const;
  Status Delete(const std::string& path);
  bool Exists(const std::string& path) const;
  std::vector<FileInfo> List(const std::string& prefix) const;

 private:
  std::map<std::string, std::string> files_;
};

}  // namespace fabric::vertica

#endif  // FABRIC_VERTICA_DFS_H_
