#ifndef FABRIC_VERTICA_SQL_EVAL_H_
#define FABRIC_VERTICA_SQL_EVAL_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/schema.h"
#include "vertica/sql_ast.h"

namespace fabric::vertica::sql {

// Resolver for non-builtin scalar functions (the UDx hook): receives the
// upper-cased function name, evaluated arguments and USING PARAMETERS.
using UdxResolver = std::function<Result<storage::Value>(
    const std::string& function, const std::vector<storage::Value>& args,
    const std::map<std::string, storage::Value>& parameters)>;

// A mergeable aggregate UDx (the hook APPROXIMATE_COUNT_DISTINCT plugs
// into). The executor drives the classic init/update/merge/finalize
// lifecycle over an opaque byte-string state:
//   init      builds the initial state from the call's constant extra
//             arguments (everything after the aggregated expression,
//             e.g. the sketch precision), evaluated once per query;
//   update    folds one non-NULL input value into the state (the
//             executor skips SQL NULLs, matching built-in aggregates);
//   merge     combines another state produced by the same init — must be
//             commutative, associative and idempotent so partial states
//             survive any re-execution or combine order;
//   finalize  renders the state as the output value.
struct AggregateUdx {
  storage::DataType output_type = storage::DataType::kFloat64;
  std::function<Result<std::string>(const std::vector<storage::Value>& extra)>
      init;
  std::function<Status(const storage::Value& input, std::string* state)>
      update;
  std::function<Status(const std::string& other, std::string* state)> merge;
  std::function<Result<storage::Value>(const std::string& state)> finalize;
};

// Looks up an aggregate UDx by upper-cased name; returns nullptr when the
// name is not a registered aggregate.
using AggregateUdxResolver =
    std::function<const AggregateUdx*(const std::string& function)>;

struct EvalContext {
  const storage::Schema* schema = nullptr;  // null for constant expressions
  const storage::Row* row = nullptr;
  const UdxResolver* udx = nullptr;
  // When set, EvalCall rejects registered aggregate UDx names per-row
  // with a typed error (same treatment as COUNT/SUM/...).
  const AggregateUdxResolver* aggregate_udx = nullptr;
};

// The ring hash exposed to SQL is signed: HASH(...) returns the raw 64-bit
// ring position with its top bit flipped, which maps the unsigned ring
// order onto the signed int64 order so range predicates compare correctly.
int64_t RingHashToSigned(uint64_t ring_hash);
uint64_t SignedToRingHash(int64_t signed_hash);

// Evaluates a scalar expression under SQL three-valued logic (NULL
// propagates; AND/OR follow Kleene logic). Aggregate function names
// (COUNT/SUM/AVG/MIN/MAX) are rejected here — the executor intercepts
// them before row-level evaluation.
Result<storage::Value> Eval(const Expr& expr, const EvalContext& context);

// WHERE semantics: row qualifies only when the expression is TRUE (a NULL
// result filters the row out).
Result<bool> EvalPredicate(const Expr& expr, const EvalContext& context);

// UPDATE/DELETE row-matching semantics: evaluation errors count as "no
// match" rather than failing the statement (the historical behavior of
// the write path's row filter).
bool EvalPredicateLenient(const Expr& expr, const EvalContext& context);

// True for COUNT/SUM/AVG/MIN/MAX.
bool IsAggregateFunction(const std::string& upper_name);

// Output-type inference for result schemas (used when zero rows return;
// shared by the interpreter's schema building and the pipeline compiler
// so both paths declare identical result schemas).
storage::DataType InferType(const Expr& expr, const storage::Schema& schema);

// Output column name for a SELECT item: alias, else the referenced
// column, else "col<position>".
std::string SelectItemName(const SelectItem& item, int position);

// True when the expression tree contains an aggregate call. The resolver
// overload also counts registered aggregate UDx names.
bool ContainsAggregate(const Expr& expr);
bool ContainsAggregate(const Expr& expr,
                       const AggregateUdxResolver* aggregate_udx);

}  // namespace fabric::vertica::sql

#endif  // FABRIC_VERTICA_SQL_EVAL_H_
