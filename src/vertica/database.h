#ifndef FABRIC_VERTICA_DATABASE_H_
#define FABRIC_VERTICA_DATABASE_H_

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/cost_model.h"
#include "common/result.h"
#include "common/string_util.h"
#include "net/host.h"
#include "net/network.h"
#include "sim/engine.h"
#include "sim/waitable.h"
#include "storage/schema.h"
#include "storage/segment_store.h"
#include "vertica/catalog.h"
#include "vertica/designer/designer.h"
#include "vertica/dfs.h"
#include "vertica/ksafety/ksafety.h"
#include "vertica/pipeline.h"
#include "vertica/sql_eval.h"
#include "vertica/tm/tuple_mover.h"
#include "vertica/wm/resource_pool.h"

namespace fabric::vertica {

class Session;

// Stable message prefix of the RESOURCE_EXHAUSTED error Connect returns
// when a node is at MaxClientSessions, so connectors can retry with
// backoff on a contract rather than on prose.
inline constexpr char kMaxClientSessionsToken[] = "MAX_CLIENT_SESSIONS";

bool IsMaxClientSessionsError(const Status& status);

// Result of one SQL statement: a schema+rows for queries, an affected-row
// count for DML, both empty for DDL/txn control.
struct QueryResult {
  storage::Schema schema;
  std::vector<storage::Row> rows;
  int64_t affected = 0;
};

// A simulated HPE Vertica database: N nodes, each with two NICs (external
// and intra-cluster) and a CPU pool, sharing a global catalog, an epoch
// counter, table-level exclusive write locks and MVCC storage segmented
// across the hash ring. All entry points must be called from simulation
// context.
class Database {
 public:
  struct Options {
    int num_nodes = 4;
    CostModel cost;
    // MaxClientSessions per node (the paper raises it to 100 for the
    // parallelism experiments).
    int max_client_sessions = 100;
    // Concurrent queries admitted per node by the legacy flat resource
    // pool; 0 means unlimited (excess queries queue, as Vertica pools
    // do). Ignored when `workload` configures named pools.
    int pool_concurrency = 0;
    // Named hierarchical resource pools (workload manager). Empty =
    // legacy flat admission via pool_concurrency.
    wm::WorkloadConfig workload;
    // Tuple Mover (background moveout/mergeout/AHM) knobs; enabled by
    // default so default-configured clusters drain their WOS.
    TupleMoverConfig tuple_mover;
    // Pipeline compilation: lower compilable SELECT bodies and scan
    // residuals to vectorized exec programs (byte-identical results and
    // traces; off forces the row-at-a-time interpreter everywhere).
    bool compile_pipelines = true;
  };

  Database(sim::Engine* engine, net::Network* network, Options options);
  ~Database();

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  // ----------------------------------------------------------- topology
  int num_nodes() const { return options_.num_nodes; }
  const net::Host& node_host(int node) const { return hosts_[node]; }
  std::string node_name(int node) const;     // "v_fabric_node0001"
  std::string node_address(int node) const;  // "10.20.0.<node+1>"
  Result<int> ResolveNode(std::string_view name_or_address) const;

  sim::Engine* engine() const { return engine_; }
  net::Network* network() const { return network_; }
  const Options& options() const { return options_; }
  const CostModel& cost() const { return options_.cost; }

  Catalog& catalog() { return catalog_; }
  const Catalog& catalog() const { return catalog_; }
  Dfs& dfs() { return dfs_; }

  storage::Epoch current_epoch() const { return epoch_; }

  // The background storage-management service (always constructed; obeys
  // options().tuple_mover.enabled).
  TupleMover* tuple_mover() { return tm_.get(); }
  // Ancient History Mark: AT EPOCH below this fails with HISTORY_PURGED.
  storage::Epoch ahm() const { return tm_->ahm(); }

  // Ring ranges per node for a table segmented across all nodes.
  const std::vector<HashRange>& node_ranges() const { return node_ranges_; }

  // Cost-model scaling control: data_scale makes each real row stand in
  // for many paper rows, which is right for bulk dataset tables but wrong
  // for control-plane tables (the S2V bookkeeping tables hold exactly as
  // many real rows as the system would at paper scale). Exempt tables
  // are costed at scale 1.
  void MarkScaleExempt(const std::string& table) {
    scale_exempt_.insert(ToLower(table));
  }
  double EffectiveScale(const std::string& table) const {
    return scale_exempt_.count(ToLower(table)) > 0
               ? 1.0
               : options_.cost.data_scale;
  }

  // ---------------------------------------------------------------- UDx
  // Scalar UDx callable from SQL. `fn` receives evaluated arguments and
  // USING PARAMETERS.
  using ScalarFn = std::function<Result<storage::Value>(
      const std::vector<storage::Value>&,
      const std::map<std::string, storage::Value>&)>;
  void RegisterScalarFunction(const std::string& name, ScalarFn fn);
  bool HasScalarFunction(const std::string& name) const;

  // Aggregate UDx with mergeable state (init/update/merge/finalize, see
  // sql::AggregateUdx). APPROXIMATE_COUNT_DISTINCT and the HLL_* family
  // are registered here at construction (udx_hll.cc).
  void RegisterAggregateFunction(const std::string& name,
                                 sql::AggregateUdx udx);
  bool HasAggregateFunction(const std::string& name) const;

  // ------------------------------------------------------------ clients
  // Opens a session against `node`. `client` is the caller's host for
  // network accounting (nullptr: a co-located console client, no network
  // cost). Fails with RESOURCE_EXHAUSTED beyond MaxClientSessions.
  Result<std::unique_ptr<Session>> Connect(sim::Process& self, int node,
                                           const net::Host* client);

  int active_sessions(int node) const { return active_sessions_[node]; }

  // ----------------------------------------------------------- k-safety
  // The fabric runs k=1: every segment of a segmented table has a buddy
  // copy on the ring-successor node, so the cluster survives any single
  // node loss. Unsegmented tables are already replicated on every node.
  NodeState node_state(int node) const { return node_states_[node]; }
  bool node_up(int node) const {
    return node_states_[node] == NodeState::kUp;
  }
  // True once both copies of some segment were lost (two adjacent nodes
  // down with k=1) — Vertica's automatic cluster shutdown. Terminal for
  // the simulated database.
  bool cluster_is_down() const { return cluster_down_; }
  // Node hosting the buddy copy of `segment` (ring successor).
  int buddy_node(int segment) const {
    return (segment + 1) % num_nodes();
  }

  // Crash injection: marks `node` DOWN instantly (host-side, callable
  // from engine callbacks — see ksafety::NodeFailureSchedule). Sessions
  // connected to the node break; its segments fail over to the buddy
  // copies. Idempotent on an already-DOWN node.
  Status KillNode(int node);
  // Rejoin: DOWN -> RECOVERING, then a spawned recovery process pulls the
  // missed delta from the buddy copies over the internal fabric and
  // atomically promotes the node back to UP.
  Status RestartNode(int node);
  // Blocks until `node` reaches `state` (test/driver convenience).
  Status WaitForNodeState(sim::Process& self, int node, NodeState state);

  // -------------------------------------------------------- telemetry
  // Fraction of the node's CPU in use (Table 2's CPU%).
  double NodeCpuUtilization(int node) const;
  // Outbound external NIC rate in bytes/s (Table 2's network MBps).
  double NodeExtEgressRate(int node) const;

  // =====================================================================
  // Internal interface below: used by Session / CopyStream / benchmarks.
  // =====================================================================

  // One physical layout of a table (the super projection or one named
  // projection): a store per segment plus optional buddy copies.
  struct SegmentSet {
    // One store per node. Unsegmented layouts are replicated: every node
    // holds the full copy and serves reads locally.
    std::vector<std::unique_ptr<storage::SegmentStore>> per_node;
    // k=1 buddy copies for segmented layouts: buddy[s] is the second copy
    // of segment s, resident on node (s+1) % N. Empty for unsegmented
    // layouts (already replicated) and single-node clusters.
    std::vector<std::unique_ptr<storage::SegmentStore>> buddy;
  };

  struct TableStorage : SegmentSet {
    // Additional physical layouts, keyed by lower-cased projection name.
    // Each projection follows its own segmentation and sort order; every
    // write path maintains all of them in the same transaction.
    std::map<std::string, SegmentSet> projections;
  };

  // One physical copy of a segment: the store plus the node whose CPU and
  // NICs serve it.
  struct SegmentCopy {
    storage::SegmentStore* store = nullptr;
    int host = -1;
  };

  // The copy serving reads of `segment`: the primary when its node is UP,
  // else the buddy. UNAVAILABLE when both copies are lost.
  Result<SegmentCopy> ReadCopy(SegmentSet* storage, int segment) const;
  // The live copies (primary and/or buddy) a write to `segment` must
  // reach; copies on non-UP nodes are skipped and caught up by recovery.
  // UNAVAILABLE when no copy is live.
  Result<std::vector<SegmentCopy>> WriteCopies(SegmentSet* storage,
                                               int segment) const;

  Result<TableStorage*> GetStorage(const std::string& table);
  // The stores of one named projection (anchored via the catalog).
  Result<SegmentSet*> GetProjectionStorage(const std::string& name);

  // Every physical segment-store copy whose serving CPU and NICs belong
  // to `node`: per_node[node] of every table, plus — for segmented tables
  // — the buddy copy whose ring successor is `node`. The Tuple Mover and
  // v_monitor.storage_containers walk stores through this.
  struct HostedStore {
    std::string table;
    std::string projection;  // empty for the super projection
    storage::SegmentStore* store = nullptr;
    int segment = -1;      // segment index (== node for primaries)
    bool is_buddy = false;
  };
  std::vector<HostedStore> HostedStores(int node);

  // ------------------------------------------- epoch pins / bookkeeping
  // Snapshot pins keep the AHM at or below every running statement's and
  // open transaction's snapshot epoch (refcounted).
  void PinEpoch(storage::Epoch epoch) { ++pinned_epochs_[epoch]; }
  void UnpinEpoch(storage::Epoch epoch);
  storage::Epoch MinPinnedEpoch() const;
  // Oldest down-epoch over non-UP nodes (max Epoch when all UP): a node
  // that must still recover pins history at its last current epoch.
  storage::Epoch MinNodeDownEpoch() const;
  // Per-epoch commit bookkeeping, GC'd below the AHM by the Tuple Mover.
  void TrimEpochBookkeeping(storage::Epoch ahm);
  const std::map<storage::Epoch, int64_t>& epoch_commits() const {
    return epoch_commits_;
  }
  // Cluster-wide WOS batch count (the vertica.wos_batches gauge).
  int64_t TotalWosBatches() const;
  Status CreateTableWithStorage(TableDef def);
  Status DropTableWithStorage(const std::string& name);
  Status RenameTableWithStorage(const std::string& from,
                                const std::string& to, bool replace);
  // Registers `def` in the catalog and builds its per-node (and, when
  // segmented on a multi-node cluster, buddy) stores with the
  // projection's sort order and encodings. Population is the caller's
  // job (ExecCreateProjection routes the anchor snapshot through the new
  // stores inside its creating transaction).
  Status CreateProjectionWithStorage(ProjectionDef def);
  Status DropProjectionWithStorage(const std::string& name);

  // Node owning `row` of `table` (-1 for unsegmented: all nodes hold it).
  int OwnerNode(const TableDef& def, const storage::Row& row) const;
  // Same, for a projection-local row under the projection's segmentation.
  int OwnerNode(const ProjectionDef& def, const storage::Row& row) const;

  // Projection maintenance for the write paths (INSERT / COPY / UPDATE
  // reinsertion): projects `rows` (anchor-width) through every projection
  // of `def`, routes by each projection's own segmentation and inserts
  // into every live copy under `txn`, charging transfers from
  // `source_host` and per-byte load CPU on the writing hosts.
  Status WriteProjectionRows(sim::Process& self, const TableDef& def,
                             const std::vector<storage::Row>& rows,
                             storage::TxnId txn, int source_host,
                             bool direct, double scale);
  // DELETE/UPDATE-side maintenance: marks the projected images of
  // `victims` (anchor-width rows deleted from the super projection)
  // deleted in every projection, by content, first match in storage
  // order — deterministic across buddy copies.
  Status DeleteProjectionRows(sim::Process& self, const TableDef& def,
                              const std::vector<storage::Row>& victims,
                              storage::TxnId txn, storage::Epoch as_of,
                              double scale);

  // ------------------------------------------------- transactions/locks
  storage::TxnId BeginTxnInternal();
  // Exclusive lock (UPDATE/DELETE/conditional writes): blocks all other
  // lock holders.
  Status LockTableX(sim::Process& self, storage::TxnId txn,
                    const std::string& table);
  // Insert lock (INSERT/COPY): compatible with other insert locks, so
  // parallel COPYs into one staging table proceed concurrently, as in
  // Vertica.
  Status LockTableI(sim::Process& self, storage::TxnId txn,
                    const std::string& table);
  // Blocks until no transaction other than `txn` (pass 0 for "any")
  // holds a lock on any of `tables`. Destructive DDL (DROP / RENAME /
  // TRUNCATE) calls this before swapping storage out from under the
  // name: the swap then happens in the same engine step the wait
  // returns in, so an in-flight COPY holding its insert lock always
  // finishes (or aborts) before its table disappears. Costs zero
  // virtual time when the tables are already idle.
  Status WaitTablesIdle(sim::Process& self, storage::TxnId txn,
                        const std::vector<std::string>& tables);
  void TouchTable(storage::TxnId txn, const std::string& table);
  // Applies the txn's pending changes at a fresh epoch and releases locks.
  Status CommitTxnInternal(sim::Process& self, storage::TxnId txn);
  // Instant, host-side (safe from killed processes / destructors).
  void AbortTxnInternal(storage::TxnId txn);

  // ----------------------------------------------------------- resources
  // Admission into a node's legacy flat resource pool (no-op when
  // unlimited or when the workload manager is active).
  Status PoolAdmit(sim::Process& self, int node);
  void PoolRelease(int node);

  // The workload manager, or nullptr when options().workload is empty
  // (legacy flat admission).
  wm::WorkloadManager* workload_manager() { return wm_.get(); }

  // Connect registers each session so KillNode can break every session
  // attached to the dying node; Session::Abandon unregisters.
  void UnregisterSession(int node, Session* session);

  // The UDx resolver bound to this database (for sql::EvalContext).
  const sql::UdxResolver& udx_resolver() const { return udx_resolver_; }

  // The aggregate UDx resolver bound to this database (threaded through
  // the aggregate executor and per-row rejection in sql::EvalCall).
  const sql::AggregateUdxResolver& aggregate_udx_resolver() const {
    return aggregate_udx_resolver_;
  }

  // The pipeline compilation cache bound to this database (obeys
  // options().compile_pipelines; compiled plans are reused across
  // sessions, partitions and failover retries).
  PipelineCompiler* pipeline_compiler() { return &pipeline_compiler_; }

  // ------------------------------------------- workload history (designer)
  // Every executed base-table scan appends its QueryShape here (a join
  // appends one entry per side), bounded to the most recent
  // kQueryHistoryCap entries. v_monitor.query_requests reads it; the
  // database designer replays it.
  static constexpr size_t kQueryHistoryCap = 4096;
  // Returns the assigned request_id (monotone, 1-based).
  int64_t RecordQueryRequest(QueryRequest request);
  // Stamps `duration` on every entry with request_id >= from_id — the
  // session calls this when the statement finishes, covering both sides
  // of a join with one call.
  void StampQueryDurations(int64_t from_id, double duration);
  int64_t next_query_request_id() const { return next_query_request_id_; }
  const std::deque<QueryRequest>& query_requests() const {
    return query_requests_;
  }

  // Runs the database designer over the captured history against the
  // current catalog and storage footprint; stores the proposals (read
  // back through v_monitor.design_proposals) and returns a one-line
  // summary. Exposed in SQL as SELECT DESIGN_PROPOSALS(budget_fraction,
  // max_proposals).
  Result<std::string> RunDesigner(double budget_fraction, int max_proposals);
  const std::vector<designer::Proposal>& design_proposals() const {
    return design_proposals_;
  }

 private:
  struct TxnState {
    std::set<std::string> locked_tables;
    std::set<std::string> touched_tables;
    storage::Epoch snapshot_epoch = 0;  // pinned while the txn is open
  };

  struct TableLock {
    storage::TxnId x_owner = 0;
    std::set<storage::TxnId> insert_owners;
    std::unique_ptr<sim::Condition> released;
  };

  sim::Engine* engine_;
  net::Network* network_;
  Options options_;
  std::vector<net::Host> hosts_;
  std::vector<HashRange> node_ranges_;
  Catalog catalog_;
  Dfs dfs_;
  storage::Epoch epoch_ = 1;
  storage::TxnId next_txn_ = 1;
  std::map<storage::TxnId, TxnState> txns_;
  std::map<storage::Epoch, int> pinned_epochs_;     // epoch -> pin count
  std::map<storage::Epoch, int64_t> epoch_commits_;  // epoch -> commits
  std::deque<QueryRequest> query_requests_;
  int64_t next_query_request_id_ = 1;
  std::vector<designer::Proposal> design_proposals_;
  std::unique_ptr<TupleMover> tm_;
  std::map<std::string, TableLock> locks_;
  std::map<std::string, TableStorage> storage_;
  std::set<std::string> scale_exempt_;
  std::map<std::string, ScalarFn> functions_;
  sql::UdxResolver udx_resolver_;
  std::map<std::string, sql::AggregateUdx> aggregate_functions_;
  sql::AggregateUdxResolver aggregate_udx_resolver_;
  PipelineCompiler pipeline_compiler_;
  std::vector<int> active_sessions_;
  std::vector<std::unique_ptr<sim::Semaphore>> pool_slots_;
  std::unique_ptr<wm::WorkloadManager> wm_;

  // ----------------------------------------------------------- k-safety
  // Recovery catch-up for `node`, run as a spawned process. `incarnation`
  // is the node's incarnation at RestartNode time: a concurrent KillNode
  // bumps it, telling an in-flight recovery to abandon (node stays DOWN).
  void RunRecovery(sim::Process& self, int node, uint64_t incarnation);

  std::vector<NodeState> node_states_;
  // Epoch the node was last current at (set on kill; recovery pulls the
  // delta committed after it).
  std::vector<storage::Epoch> node_down_epoch_;
  // Bumped on every KillNode; guards recovery against a re-kill.
  std::vector<uint64_t> node_incarnation_;
  bool cluster_down_ = false;
  std::vector<std::set<Session*>> node_sessions_;
  std::unique_ptr<sim::Condition> state_changed_;
};

}  // namespace fabric::vertica

#endif  // FABRIC_VERTICA_DATABASE_H_
