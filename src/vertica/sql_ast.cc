#include "vertica/sql_ast.h"

#include "common/logging.h"
#include "common/string_util.h"

namespace fabric::vertica::sql {

ExprPtr Expr::Literal(storage::Value v) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kLiteral;
  e->literal = std::move(v);
  return e;
}

ExprPtr Expr::ColumnRef(std::string name) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kColumnRef;
  e->column = std::move(name);
  return e;
}

ExprPtr Expr::Unary(std::string op, ExprPtr operand) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kUnary;
  e->op = std::move(op);
  e->args.push_back(std::move(operand));
  return e;
}

ExprPtr Expr::Binary(std::string op, ExprPtr lhs, ExprPtr rhs) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kBinary;
  e->op = std::move(op);
  e->args.push_back(std::move(lhs));
  e->args.push_back(std::move(rhs));
  return e;
}

ExprPtr Expr::IsNull(ExprPtr operand, bool negated) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kIsNull;
  e->negated = negated;
  e->args.push_back(std::move(operand));
  return e;
}

ExprPtr Expr::Call(std::string function, std::vector<ExprPtr> args) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kCall;
  e->function = ToUpper(function);
  e->args = std::move(args);
  return e;
}

std::string Expr::ToSql() const {
  switch (kind) {
    case Kind::kLiteral:
      return literal.ToSqlLiteral();
    case Kind::kColumnRef:
      return column;
    case Kind::kUnary:
      if (op == "NOT") return StrCat("(NOT ", args[0]->ToSql(), ")");
      // The space matters: "-" directly against a negative literal would
      // render "--5", which the lexer treats as a line comment.
      return StrCat("(", op, " ", args[0]->ToSql(), ")");
    case Kind::kBinary:
      return StrCat("(", args[0]->ToSql(), " ", op, " ", args[1]->ToSql(),
                    ")");
    case Kind::kIsNull:
      return StrCat("(", args[0]->ToSql(),
                    negated ? " IS NOT NULL)" : " IS NULL)");
    case Kind::kCall: {
      std::string out = function;
      out += "(";
      if (op == "*") out += "*";  // COUNT(*) carries no argument exprs
      for (size_t i = 0; i < args.size(); ++i) {
        if (i > 0) out += ", ";
        out += args[i]->ToSql();
      }
      if (!parameters.empty()) {
        out += " USING PARAMETERS ";
        bool first = true;
        for (const auto& [name, value] : parameters) {
          if (!first) out += ", ";
          first = false;
          out += name;
          out += "=";
          out += value.ToSqlLiteral();
        }
      }
      out += ")";
      return out;
    }
  }
  return "?";
}

ExprPtr Expr::Clone() const {
  auto e = std::make_unique<Expr>();
  e->kind = kind;
  e->literal = literal;
  e->column = column;
  e->op = op;
  e->function = function;
  e->negated = negated;
  e->parameters = parameters;
  for (const ExprPtr& arg : args) e->args.push_back(arg->Clone());
  return e;
}

std::string CreateProjectionStmt::ToSql() const {
  std::string out = StrCat("CREATE PROJECTION ", name, " AS SELECT ");
  if (star) {
    out += "*";
  } else {
    out += Join(columns, ", ");
  }
  out += StrCat(" FROM ", anchor);
  if (!order_by.empty()) out += StrCat(" ORDER BY ", Join(order_by, ", "));
  if (unsegmented) {
    out += " UNSEGMENTED";
  } else if (!segmentation_columns.empty()) {
    out += StrCat(" SEGMENTED BY HASH(", Join(segmentation_columns, ", "),
                  ")");
  }
  return out;
}

std::string SelectStmt::ToSql() const {
  std::string out = "SELECT ";
  for (size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += ", ";
    if (items[i].star) {
      out += "*";
    } else {
      out += items[i].expr->ToSql();
      if (!items[i].alias.empty()) out += StrCat(" AS ", items[i].alias);
    }
  }
  if (!from.empty()) out += StrCat(" FROM ", from);
  if (!join.empty()) {
    // A programmatically built statement may carry a join with no ON
    // (the parser always sets one); render the always-true condition so
    // the text stays parseable instead of dereferencing null.
    out += StrCat(" JOIN ", join, " ON ",
                  join_on != nullptr ? join_on->ToSql() : "(1 = 1)");
  }
  if (where != nullptr) out += StrCat(" WHERE ", where->ToSql());
  if (!group_by.empty()) out += StrCat(" GROUP BY ", Join(group_by, ", "));
  if (!order_by.empty()) {
    out += " ORDER BY ";
    for (size_t i = 0; i < order_by.size(); ++i) {
      if (i > 0) out += ", ";
      out += order_by[i].column;
      if (order_by[i].descending) out += " DESC";
    }
  }
  if (limit >= 0) out += StrCat(" LIMIT ", limit);
  if (at_epoch >= 0) out += StrCat(" AT EPOCH ", at_epoch);
  return out;
}

}  // namespace fabric::vertica::sql
