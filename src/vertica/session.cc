#include "vertica/session.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <set>
#include <variant>

#include "common/logging.h"
#include "common/string_util.h"
#include "exec/pipeline.h"
#include "obs/trace.h"
#include "storage/profile.h"
#include "vertica/pipeline.h"
#include "vertica/projections/planner.h"
#include "vertica/sql_analyzer.h"
#include "vertica/sql_eval.h"
#include "vertica/sql_parser.h"

namespace fabric::vertica {
namespace {

using storage::DataProfile;
using storage::DataType;
using storage::Epoch;
using storage::Row;
using storage::Schema;
using storage::TxnId;
using storage::Value;

// Ack latency after a commit becomes durable: a kill landing inside this
// window produces the paper's "task fails immediately after the commit"
// hazard (Section 2.2.2) — the change is durable but the client never
// learns it.
constexpr double kCommitAckLatency = 0.002;

// ------------------------------------------------------------ aggregates

struct AggSpec {
  enum class Kind { kCount, kSum, kAvg, kMin, kMax, kUdx };
  Kind kind;
  const sql::Expr* arg = nullptr;  // null for COUNT(*)
  std::string out_name;
  // Aggregate UDx (kind == kUdx): the registered lifecycle plus the
  // initial state built once per query from the call's extra constant
  // arguments (e.g. APPROXIMATE_COUNT_DISTINCT's precision).
  const sql::AggregateUdx* udx = nullptr;
  std::string init_state;
};

struct AggPartial {
  int64_t count = 0;
  double sum = 0;
  bool any = false;
  Value min;
  Value max;
  std::string udx_state;
};

Status UpdatePartial(const AggSpec& spec, const Value& v, AggPartial* p) {
  if (v.is_null()) return Status::OK();  // SQL aggregates skip NULLs
  p->any = true;
  ++p->count;
  switch (spec.kind) {
    case AggSpec::Kind::kCount:
      break;
    case AggSpec::Kind::kUdx:
      if (p->udx_state.empty()) p->udx_state = spec.init_state;
      return spec.udx->update(v, &p->udx_state);
    case AggSpec::Kind::kSum:
    case AggSpec::Kind::kAvg: {
      FABRIC_ASSIGN_OR_RETURN(double d, v.AsDouble());
      p->sum += d;
      break;
    }
    case AggSpec::Kind::kMin: {
      if (p->min.is_null() || v.Compare(p->min).value() < 0) p->min = v;
      break;
    }
    case AggSpec::Kind::kMax: {
      if (p->max.is_null() || v.Compare(p->max).value() > 0) p->max = v;
      break;
    }
  }
  return Status::OK();
}

Result<Value> FinalizePartial(const AggSpec& spec, const AggPartial& p) {
  switch (spec.kind) {
    case AggSpec::Kind::kCount:
      return Value::Int64(p.count);
    case AggSpec::Kind::kSum:
      return p.any ? Value::Float64(p.sum) : Value::Null();
    case AggSpec::Kind::kAvg:
      return p.any ? Value::Float64(p.sum / p.count) : Value::Null();
    case AggSpec::Kind::kMin:
      return p.min;
    case AggSpec::Kind::kMax:
      return p.max;
    case AggSpec::Kind::kUdx:
      return spec.udx->finalize(p.udx_state.empty() ? spec.init_state
                                                    : p.udx_state);
  }
  return Value::Null();
}

// Combines a spilled partial into the resident one. Every aggregate the
// executor supports is mergeable (count/sum/min/max are trivially so,
// aggregate UDx states merge through their registered lifecycle), which
// is what makes grace-hash spilling below exact.
Status MergePartial(const AggSpec& spec, const AggPartial& src,
                    AggPartial* dst) {
  dst->count += src.count;
  dst->sum += src.sum;
  dst->any = dst->any || src.any;
  if (!src.min.is_null() &&
      (dst->min.is_null() || src.min.Compare(dst->min).value() < 0)) {
    dst->min = src.min;
  }
  if (!src.max.is_null() &&
      (dst->max.is_null() || src.max.Compare(dst->max).value() > 0)) {
    dst->max = src.max;
  }
  if (spec.kind == AggSpec::Kind::kUdx && !src.udx_state.empty()) {
    if (dst->udx_state.empty()) {
      dst->udx_state = src.udx_state;
    } else {
      FABRIC_RETURN_IF_ERROR(spec.udx->merge(src.udx_state,
                                             &dst->udx_state));
    }
  }
  return Status::OK();
}

Result<AggSpec::Kind> AggKindOf(const std::string& name) {
  if (name == "COUNT") return AggSpec::Kind::kCount;
  if (name == "SUM") return AggSpec::Kind::kSum;
  if (name == "AVG") return AggSpec::Kind::kAvg;
  if (name == "MIN") return AggSpec::Kind::kMin;
  if (name == "MAX") return AggSpec::Kind::kMax;
  return InvalidArgumentError(StrCat("not an aggregate: ", name));
}

// ------------------------------------------------------- plan structures

// Which table columns a query touches (column-store projection pruning:
// only these columns are scanned and costed).
Status CollectColumns(const sql::Expr& expr, const Schema& schema,
                      std::set<int>* out) {
  if (expr.kind == sql::Expr::Kind::kColumnRef) {
    FABRIC_ASSIGN_OR_RETURN(int idx, schema.IndexOf(expr.column));
    out->insert(idx);
    return Status::OK();
  }
  for (const sql::ExprPtr& arg : expr.args) {
    FABRIC_RETURN_IF_ERROR(CollectColumns(*arg, schema, out));
  }
  return Status::OK();
}

// Result-schema helpers shared with the pipeline compiler.
using sql::InferType;

std::string ItemName(const sql::SelectItem& item, int position) {
  return sql::SelectItemName(item, position);
}

// Applies ORDER BY / LIMIT to a materialized result (by output column
// names).
Status ApplyOrderAndLimit(const sql::SelectStmt& select,
                          QueryResult* result) {
  if (!select.order_by.empty()) {
    std::vector<std::pair<int, bool>> keys;
    for (const sql::OrderItem& item : select.order_by) {
      FABRIC_ASSIGN_OR_RETURN(int idx,
                              result->schema.IndexOf(item.column));
      keys.emplace_back(idx, item.descending);
    }
    std::stable_sort(result->rows.begin(), result->rows.end(),
                     [&keys](const Row& a, const Row& b) {
                       for (const auto& [idx, desc] : keys) {
                         auto c = a[idx].Compare(b[idx]);
                         int cc = c.ok() ? *c : 0;
                         if (cc != 0) return desc ? cc > 0 : cc < 0;
                       }
                       return false;
                     });
  }
  if (select.limit >= 0 &&
      static_cast<int64_t>(result->rows.size()) > select.limit) {
    result->rows.resize(select.limit);
  }
  return Status::OK();
}

std::string GroupKeyOf(const Row& row, const std::vector<int>& cols) {
  std::string key;
  for (int c : cols) {
    key += row[c].is_null() ? std::string("\x01") : row[c].ToDisplayString();
    key.push_back('\x02');
  }
  return key;
}

}  // namespace

// ------------------------------------------------------------- lifecycle

Session::Session(Database* db, int node, const net::Host* client)
    : db_(db), node_(node), client_(client) {}

Session::~Session() { Abandon(); }

void Session::Abandon() {
  if (closed_) return;
  closed_ = true;
  if (txn_ != 0) {
    db_->AbortTxnInternal(txn_);
    txn_ = 0;
  }
  db_->UnregisterSession(node_, this);
}

Status Session::Close(sim::Process& self) {
  if (closed_) return Status::OK();
  Status status = self.Sleep(db_->cost().session_teardown);
  Abandon();
  return status;
}

// ------------------------------------------------------------- dispatch

Result<QueryResult> Session::Execute(sim::Process& self,
                                     std::string_view sql_text) {
  if (closed_) return FailedPreconditionError("session closed");
  if (broken_ || db_->cluster_is_down()) {
    return UnavailableError(
        StrCat("connection to ", db_->node_name(node_), " lost"));
  }
  FABRIC_RETURN_IF_ERROR(self.CheckAlive());
  // Per-statement observability state: a statement killed before its
  // dispatcher runs must not leave the previous statement's outcome
  // visible through last_commit_epoch()/last_update_affected().
  last_commit_epoch_ = 0;
  last_update_affected_ = -1;
  FABRIC_ASSIGN_OR_RETURN(sql::Statement statement, sql::Parse(sql_text));
  // Workload-manager admission covers every statement except transaction
  // control: BEGIN/COMMIT/ROLLBACK must never queue, else a session
  // holding table locks could wait on admission behind statements
  // waiting on those locks (admission <-> lock deadlock).
  wm::WorkloadManager* wm = db_->workload_manager();
  bool admitted = false;
  if (wm != nullptr && !std::holds_alternative<sql::TxnStmt>(statement)) {
    FABRIC_ASSIGN_OR_RETURN(
        wm_grant_, wm->Admit(self, node_, resource_pool_, memory_request_));
    admitted = true;
  }
  // Releases the admission grant on every exit path below (statement
  // errors, kills, broken-node unwinds).
  auto release_grant = [&] {
    if (admitted) {
      wm->Release(wm_grant_);
      wm_grant_ = wm::Grant{};
      admitted = false;
    }
  };
  // Parse/plan cost on the initiator node.
  Status overhead = net::RunCpu(self, db_->network(), db_->node_host(node_),
                                db_->cost().statement_overhead_cpu);
  if (!overhead.ok()) {
    release_grant();
    return overhead;
  }
  // Workload capture: scans dispatched below record their query shapes;
  // stamp every entry this statement produced with its total duration
  // once it finishes (the designer weighs shapes by what they cost).
  const int64_t first_request_id = db_->next_query_request_id();
  const double statement_started = db_->engine()->now();
  Result<QueryResult> result = std::visit(
      [&](auto&& stmt) -> Result<QueryResult> {
        using T = std::decay_t<decltype(stmt)>;
        if constexpr (std::is_same_v<T, sql::SelectStmt>) {
          return ExecSelect(self, stmt, /*to_client=*/true, 0);
        } else if constexpr (std::is_same_v<T, sql::CreateTableStmt>) {
          return ExecCreateTable(self, stmt);
        } else if constexpr (std::is_same_v<T, sql::CreateViewStmt>) {
          return ExecCreateView(self, stmt);
        } else if constexpr (std::is_same_v<T, sql::CreateProjectionStmt>) {
          return ExecCreateProjection(self, stmt);
        } else if constexpr (std::is_same_v<T, sql::ExplainStmt>) {
          return ExecExplain(self, stmt);
        } else if constexpr (std::is_same_v<T, sql::DropStmt>) {
          return ExecDrop(self, stmt);
        } else if constexpr (std::is_same_v<T, sql::RenameTableStmt>) {
          return ExecRename(self, stmt);
        } else if constexpr (std::is_same_v<T, sql::TruncateStmt>) {
          return ExecTruncate(self, stmt);
        } else if constexpr (std::is_same_v<T, sql::InsertStmt>) {
          return ExecInsert(self, stmt);
        } else if constexpr (std::is_same_v<T, sql::UpdateStmt>) {
          return ExecUpdate(self, stmt);
        } else if constexpr (std::is_same_v<T, sql::DeleteStmt>) {
          return ExecDelete(self, stmt);
        } else {
          return ExecTxn(self, stmt);
        }
      },
      statement);
  release_grant();
  db_->StampQueryDurations(first_request_id,
                           db_->engine()->now() - statement_started);
  // The node died while the statement was in flight: whatever the server
  // did (including a commit that reached durability just before the
  // kill), the client never hears the outcome.
  if (result.ok() && broken_) {
    return UnavailableError(
        StrCat("connection to ", db_->node_name(node_), " lost"));
  }
  return result;
}

Result<QueryResult> Session::ExecuteSelectInternal(
    sim::Process& self, const sql::SelectStmt& select, int view_depth) {
  return ExecSelect(self, select, /*to_client=*/false, view_depth);
}

// ------------------------------------------------------------ txn basics

Session::WriteTxn Session::EnsureWriteTxn() {
  if (txn_ != 0) return WriteTxn{txn_, false};
  return WriteTxn{db_->BeginTxnInternal(), true};
}

Status Session::FinishWriteTxn(sim::Process& self, const WriteTxn& wt,
                               Status status) {
  // If the node died under the statement, the write never reaches
  // durability — abort instead of committing on a dead node.
  if (status.ok() && broken_) {
    status = UnavailableError(
        StrCat("connection to ", db_->node_name(node_), " lost"));
  }
  if (!wt.autocommit) {
    // Explicit transaction: statement failure aborts the whole txn (the
    // Vertica behaviour connector code relies on for conditional
    // updates).
    if (!status.ok()) {
      db_->AbortTxnInternal(wt.txn);
      txn_ = 0;
    }
    return status;
  }
  last_commit_epoch_ = 0;
  if (!status.ok()) {
    db_->AbortTxnInternal(wt.txn);
    return status;
  }
  Status commit = db_->CommitTxnInternal(self, wt.txn);
  if (!commit.ok()) {
    db_->AbortTxnInternal(wt.txn);
    return commit;
  }
  last_commit_epoch_ = db_->current_epoch();
  return self.Sleep(kCommitAckLatency);
}

Result<QueryResult> Session::ExecTxn(sim::Process& self,
                                     const sql::TxnStmt& stmt) {
  QueryResult result;
  switch (stmt.kind) {
    case sql::TxnStmt::Kind::kBegin:
      if (txn_ == 0) txn_ = db_->BeginTxnInternal();
      return result;
    case sql::TxnStmt::Kind::kCommit: {
      last_commit_epoch_ = 0;
      if (txn_ == 0) return result;
      if (broken_) {
        db_->AbortTxnInternal(txn_);
        txn_ = 0;
        return UnavailableError(
            StrCat("connection to ", db_->node_name(node_), " lost"));
      }
      TxnId txn = txn_;
      Status commit = db_->CommitTxnInternal(self, txn);
      if (!commit.ok()) {
        // Commit did not reach durability; roll back.
        db_->AbortTxnInternal(txn);
        txn_ = 0;
        return commit;
      }
      txn_ = 0;
      last_commit_epoch_ = db_->current_epoch();
      // The commit is durable; a kill during the ack still loses the
      // client's confirmation (exactly the hazard S2V must survive).
      FABRIC_RETURN_IF_ERROR(self.Sleep(kCommitAckLatency));
      return result;
    }
    case sql::TxnStmt::Kind::kRollback:
      if (txn_ != 0) {
        db_->AbortTxnInternal(txn_);
        txn_ = 0;
      }
      return result;
  }
  return InternalError("corrupt txn statement");
}

// ------------------------------------------------------------------ DDL

Result<QueryResult> Session::ExecCreateTable(
    sim::Process& self, const sql::CreateTableStmt& stmt) {
  FABRIC_RETURN_IF_ERROR(self.Sleep(db_->cost().ddl_overhead));
  if (stmt.if_not_exists && db_->catalog().HasTable(stmt.name)) {
    return QueryResult{};
  }
  TableDef def;
  def.name = stmt.name;
  std::vector<storage::ColumnDef> columns;
  for (const auto& [name, type] : stmt.columns) {
    columns.push_back({name, type});
  }
  def.schema = Schema(std::move(columns));
  if (stmt.unsegmented) {
    // Replicated table: empty segmentation.
  } else if (!stmt.segmentation_columns.empty()) {
    for (const std::string& col : stmt.segmentation_columns) {
      FABRIC_ASSIGN_OR_RETURN(int idx, def.schema.IndexOf(col));
      def.segmentation.columns.push_back(idx);
    }
  } else {
    // Default segmentation: Vertica derives a compact expression from the
    // table definition; we use the first column(s), capped at two.
    for (int i = 0; i < std::min(2, def.schema.num_columns()); ++i) {
      def.segmentation.columns.push_back(i);
    }
  }
  FABRIC_RETURN_IF_ERROR(db_->CreateTableWithStorage(std::move(def)));
  return QueryResult{};
}

Result<QueryResult> Session::ExecCreateView(sim::Process& self,
                                            const sql::CreateViewStmt& stmt) {
  FABRIC_RETURN_IF_ERROR(self.Sleep(db_->cost().ddl_overhead));
  ViewDef def;
  def.name = stmt.name;
  def.query_sql = stmt.select->ToSql();
  FABRIC_RETURN_IF_ERROR(db_->catalog().CreateView(std::move(def)));
  return QueryResult{};
}

Result<QueryResult> Session::ExecCreateProjection(
    sim::Process& self, const sql::CreateProjectionStmt& stmt) {
  if (txn_ != 0) {
    return FailedPreconditionError(
        "CREATE PROJECTION inside an explicit transaction is not "
        "supported");
  }
  FABRIC_RETURN_IF_ERROR(self.Sleep(db_->cost().ddl_overhead));
  FABRIC_ASSIGN_OR_RETURN(const TableDef* def,
                          db_->catalog().GetTable(stmt.anchor));
  const Schema& anchor_schema = def->schema;

  ProjectionDef proj;
  proj.name = stmt.name;
  proj.anchor = def->name;
  if (stmt.star) {
    for (int c = 0; c < anchor_schema.num_columns(); ++c) {
      proj.columns.push_back(c);
    }
  } else {
    std::set<int> seen;
    for (const std::string& col : stmt.columns) {
      FABRIC_ASSIGN_OR_RETURN(int idx, anchor_schema.IndexOf(col));
      if (!seen.insert(idx).second) {
        return InvalidArgumentError(
            StrCat("duplicate projection column '", col, "'"));
      }
      proj.columns.push_back(idx);
    }
  }
  proj.schema = anchor_schema.Project(proj.columns);
  for (const std::string& col : stmt.order_by) {
    FABRIC_ASSIGN_OR_RETURN(int idx, proj.schema.IndexOf(col));
    proj.sort_columns.push_back(idx);
  }
  if (stmt.unsegmented) {
    // Replicated projection: empty segmentation.
  } else if (!stmt.segmentation_columns.empty()) {
    for (const std::string& col : stmt.segmentation_columns) {
      FABRIC_ASSIGN_OR_RETURN(int idx, proj.schema.IndexOf(col));
      proj.segmentation.columns.push_back(idx);
    }
  } else if (!proj.sort_columns.empty()) {
    // Default segmentation: hash of the sort key.
    proj.segmentation.columns = proj.sort_columns;
  } else {
    proj.segmentation.columns.push_back(0);
  }

  // Populate from the anchor's current snapshot inside the creating
  // transaction: snapshot every segment, project, choose encodings from
  // the sample, route by the projection's own segmentation, and commit —
  // the projection becomes queryable exactly at its create epoch.
  FABRIC_ASSIGN_OR_RETURN(Database::TableStorage * anchor_storage,
                          db_->GetStorage(def->name));
  TxnId txn = db_->BeginTxnInternal();
  bool created = false;
  Status status = [&]() -> Status {
    FABRIC_RETURN_IF_ERROR(db_->LockTableX(self, txn, def->name));
    db_->TouchTable(txn, def->name);
    Epoch snapshot = db_->current_epoch();
    const CostModel& cost = db_->cost();
    double scale = db_->EffectiveScale(def->name);

    std::vector<Row> anchor_rows;
    if (def->segmentation.unsegmented()) {
      // Replicated anchor: the initiator's local copy holds everything.
      FABRIC_ASSIGN_OR_RETURN(
          anchor_rows,
          anchor_storage->per_node[node_]->SnapshotRows(snapshot));
      DataProfile profile = ProfileRows(anchor_rows);
      profile.ScaleBy(scale);
      FABRIC_RETURN_IF_ERROR(net::RunCpu(self, db_->network(),
                                         db_->node_host(node_),
                                         profile.ScanCpu(cost)));
    } else {
      for (int n = 0; n < db_->num_nodes(); ++n) {
        FABRIC_ASSIGN_OR_RETURN(Database::SegmentCopy copy,
                                db_->ReadCopy(anchor_storage, n));
        FABRIC_ASSIGN_OR_RETURN(std::vector<Row> seg_rows,
                                copy.store->SnapshotRows(snapshot));
        DataProfile profile = ProfileRows(seg_rows);
        profile.ScaleBy(scale);
        FABRIC_RETURN_IF_ERROR(net::RunCpu(self, db_->network(),
                                           db_->node_host(copy.host),
                                           profile.ScanCpu(cost)));
        if (copy.host != node_) {
          FABRIC_RETURN_IF_ERROR(db_->network()->Transfer(
              self,
              {db_->node_host(copy.host).int_egress,
               db_->node_host(node_).int_ingress},
              profile.raw_bytes));
        }
        for (Row& row : seg_rows) anchor_rows.push_back(std::move(row));
      }
    }

    std::vector<Row> proj_rows;
    proj_rows.reserve(anchor_rows.size());
    for (const Row& row : anchor_rows) {
      Row prow;
      prow.reserve(proj.columns.size());
      for (int c : proj.columns) prow.push_back(row[c]);
      proj_rows.push_back(std::move(prow));
    }
    proj.encodings = projections::ChooseEncodings(
        proj.schema, proj.sort_columns, proj_rows);
    FABRIC_RETURN_IF_ERROR(db_->CreateProjectionWithStorage(proj));
    created = true;

    FABRIC_ASSIGN_OR_RETURN(Database::SegmentSet * set,
                            db_->GetProjectionStorage(proj.name));
    std::vector<std::vector<Row>> per_node(db_->num_nodes());
    bool replicated = proj.segmentation.unsegmented();
    for (Row& prow : proj_rows) {
      int owner = db_->OwnerNode(proj, prow);
      if (owner < 0) {
        for (int n = 0; n < db_->num_nodes(); ++n) {
          per_node[n].push_back(prow);
        }
      } else {
        per_node[owner].push_back(std::move(prow));
      }
    }
    for (int n = 0; n < db_->num_nodes(); ++n) {
      if (per_node[n].empty()) continue;
      std::vector<Database::SegmentCopy> copies;
      if (replicated) {
        if (!db_->node_up(n)) continue;
        copies.push_back(
            Database::SegmentCopy{set->per_node[n].get(), n});
      } else {
        FABRIC_ASSIGN_OR_RETURN(copies, db_->WriteCopies(set, n));
      }
      double raw_bytes = ProfileRows(per_node[n]).raw_bytes * scale;
      for (size_t c = 0; c < copies.size(); ++c) {
        const Database::SegmentCopy& copy = copies[c];
        if (copy.host != node_) {
          FABRIC_RETURN_IF_ERROR(db_->network()->Transfer(
              self,
              {db_->node_host(node_).int_egress,
               db_->node_host(copy.host).int_ingress},
              raw_bytes));
        }
        // Sort + encode into the projection's physical design.
        FABRIC_RETURN_IF_ERROR(net::RunCpu(
            self, db_->network(), db_->node_host(copy.host),
            raw_bytes * cost.scan_cpu_per_byte));
        std::vector<Row> batch = c + 1 < copies.size()
                                     ? per_node[n]
                                     : std::move(per_node[n]);
        FABRIC_RETURN_IF_ERROR(
            copy.store->InsertPendingDirect(txn, std::move(batch)));
      }
    }
    return Status::OK();
  }();
  if (!status.ok()) {
    db_->AbortTxnInternal(txn);
    if (created) {
      Status dropped = db_->DropProjectionWithStorage(proj.name);
      (void)dropped;
    }
    return status;
  }
  Status commit = db_->CommitTxnInternal(self, txn);
  if (!commit.ok()) {
    db_->AbortTxnInternal(txn);
    Status dropped = db_->DropProjectionWithStorage(proj.name);
    (void)dropped;
    return commit;
  }
  FABRIC_RETURN_IF_ERROR(db_->catalog().SetProjectionCreateEpoch(
      proj.name, db_->current_epoch()));
  obs::TraceEvent("vertica", "projection.create",
                  {{"projection", proj.name},
                   {"anchor", def->name},
                   {"epoch", db_->current_epoch()}});
  return QueryResult{};
}

Result<QueryResult> Session::ExecExplain(sim::Process& self,
                                         const sql::ExplainStmt& stmt) {
  FABRIC_RETURN_IF_ERROR(self.CheckAlive());
  const sql::SelectStmt& select = *stmt.select;
  QueryResult result;
  result.schema = Schema({{"plan", DataType::kVarchar}});
  auto emit = [&result](std::string line) {
    result.rows.push_back({Value::Varchar(std::move(line))});
  };
  emit(StrCat("EXPLAIN SELECT FROM ",
              select.from.empty() ? "<constants>" : select.from));
  std::string from = ToLower(select.from);
  auto fmt_cost = [](double cost) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.4f", cost);
    return std::string(buf);
  };
  auto fmt_candidates = [&fmt_cost](
      const std::vector<std::pair<std::string, double>>& candidates) {
    std::string cands;
    for (const auto& [cand_name, cand_cost] : candidates) {
      if (!cands.empty()) cands += ", ";
      cands += StrCat(cand_name, "=", fmt_cost(cand_cost));
    }
    return cands;
  };
  if (!select.join.empty()) {
    // Typed forced-hint errors (per-table projection, forced merge)
    // propagate so EXPLAIN fails the same way execution would.
    FABRIC_ASSIGN_OR_RETURN(std::optional<JoinQueryPlan> planned,
                            PlanJoinQuery(select));
    if (!planned.has_value()) {
      emit("  join: n/a (not a plannable base-table join)");
      return result;
    }
    const JoinQueryPlan& jq = *planned;
    emit(StrCat("  join strategy: ", jq.plan.strategy(), " join",
                jq.plan.co_located ? " (co-located)" : ""));
    emit(StrCat("  join key: ", select.from, ".",
                jq.left_table->schema.column(jq.left_key).name, " = ",
                select.join, ".",
                jq.right_table->schema.column(jq.right_key).name));
    auto side_name = [](const projections::PlanChoice& pick) {
      return pick.projection == nullptr ? std::string("super")
                                        : pick.projection->name;
    };
    emit(StrCat("  projection(", select.from, "): ",
                side_name(jq.plan.left),
                " (cost=", fmt_cost(jq.plan.left.cost), ")"));
    emit(StrCat("  projection(", select.join, "): ",
                side_name(jq.plan.right),
                " (cost=", fmt_cost(jq.plan.right.cost), ")"));
    emit(StrCat("  candidates(", select.from, "): ",
                fmt_candidates(jq.left_candidates)));
    emit(StrCat("  candidates(", select.join, "): ",
                fmt_candidates(jq.right_candidates)));
    return result;
  }
  if (select.from.empty() ||
      StartsWith(from, "v_catalog.") || StartsWith(from, "v_monitor.") ||
      db_->catalog().HasView(select.from)) {
    emit("  projection: n/a (not a base-table scan)");
    return result;
  }
  FABRIC_ASSIGN_OR_RETURN(const TableDef* def,
                          db_->catalog().GetTable(select.from));
  projections::QueryShape shape =
      projections::ShapeOf(select, def->schema);
  std::vector<std::pair<std::string, double>> candidates;
  projections::PlanChoice plan =
      projections::ChoosePlan(db_->catalog(), *def, shape, &candidates);
  char cost_buf[32];
  std::snprintf(cost_buf, sizeof(cost_buf), "%.4f", plan.cost);
  emit(StrCat("  projection: ",
              plan.projection == nullptr ? std::string("super")
                                         : plan.projection->name,
              " (cost=", cost_buf, ")"));
  emit(StrCat("  reason: ", plan.reason));
  if (shape.aggregate && !shape.group_by.empty()) {
    emit(StrCat("  group-by strategy: ",
                plan.sorted_group_by ? "merge (sorted)" : "hash"));
  }
  std::string cands;
  for (const auto& [cand_name, cand_cost] : candidates) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.4f", cand_cost);
    if (!cands.empty()) cands += ", ";
    cands += StrCat(cand_name, "=", buf);
  }
  emit(StrCat("  candidates: ", cands));
  return result;
}

Result<QueryResult> Session::ExecDrop(sim::Process& self,
                                      const sql::DropStmt& stmt) {
  FABRIC_RETURN_IF_ERROR(self.Sleep(db_->cost().ddl_overhead));
  if (stmt.is_projection) {
    auto proj = db_->catalog().GetProjection(stmt.name);
    if (!proj.ok()) {
      if (stmt.if_exists &&
          proj.status().code() == StatusCode::kNotFound) {
        return QueryResult{};
      }
      return proj.status();
    }
    // Writers routing into the projection's stores must drain first.
    FABRIC_RETURN_IF_ERROR(
        db_->WaitTablesIdle(self, txn_, {(*proj)->anchor}));
    FABRIC_RETURN_IF_ERROR(db_->DropProjectionWithStorage(stmt.name));
    return QueryResult{};
  }
  if (stmt.is_view) {
    Status status = db_->catalog().DropView(stmt.name);
    if (!status.ok() && stmt.if_exists &&
        status.code() == StatusCode::kNotFound) {
      return QueryResult{};
    }
    FABRIC_RETURN_IF_ERROR(status);
    return QueryResult{};
  }
  FABRIC_RETURN_IF_ERROR(db_->WaitTablesIdle(self, txn_, {stmt.name}));
  Status status = db_->DropTableWithStorage(stmt.name);
  if (!status.ok() && stmt.if_exists &&
      status.code() == StatusCode::kNotFound) {
    return QueryResult{};
  }
  FABRIC_RETURN_IF_ERROR(status);
  return QueryResult{};
}

Result<QueryResult> Session::ExecRename(sim::Process& self,
                                        const sql::RenameTableStmt& stmt) {
  FABRIC_RETURN_IF_ERROR(self.Sleep(db_->cost().ddl_overhead));
  // Loads into either name (e.g. a speculative task attempt still
  // copying into the staging table) must drain before the swap.
  FABRIC_RETURN_IF_ERROR(
      db_->WaitTablesIdle(self, txn_, {stmt.from, stmt.to}));
  FABRIC_RETURN_IF_ERROR(
      db_->RenameTableWithStorage(stmt.from, stmt.to, stmt.replace));
  return QueryResult{};
}

Result<QueryResult> Session::ExecTruncate(sim::Process& self,
                                          const sql::TruncateStmt& stmt) {
  if (txn_ != 0) {
    return FailedPreconditionError(
        "TRUNCATE inside an explicit transaction is not supported");
  }
  FABRIC_RETURN_IF_ERROR(self.Sleep(db_->cost().ddl_overhead));
  FABRIC_RETURN_IF_ERROR(db_->WaitTablesIdle(self, txn_, {stmt.table}));
  FABRIC_ASSIGN_OR_RETURN(const TableDef* def,
                          db_->catalog().GetTable(stmt.table));
  FABRIC_ASSIGN_OR_RETURN(Database::TableStorage * storage,
                          db_->GetStorage(stmt.table));
  for (auto& store : storage->per_node) {
    store = std::make_unique<storage::SegmentStore>(def->schema);
  }
  for (auto& store : storage->buddy) {
    store = std::make_unique<storage::SegmentStore>(def->schema);
  }
  // Projections truncate in lockstep, keeping their physical design.
  for (auto& [proj_name, set] : storage->projections) {
    FABRIC_ASSIGN_OR_RETURN(const ProjectionDef* proj,
                            db_->catalog().GetProjection(proj_name));
    for (auto& store : set.per_node) {
      store = std::make_unique<storage::SegmentStore>(proj->schema,
                                                      proj->Design());
    }
    for (auto& store : set.buddy) {
      store = std::make_unique<storage::SegmentStore>(proj->schema,
                                                      proj->Design());
    }
  }
  return QueryResult{};
}

// ------------------------------------------------------------------ DML

Result<QueryResult> Session::ExecInsert(sim::Process& self,
                                        const sql::InsertStmt& stmt) {
  FABRIC_ASSIGN_OR_RETURN(const TableDef* def,
                          db_->catalog().GetTable(stmt.table));
  const Schema& schema = def->schema;

  // Materialize the rows to insert.
  std::vector<Row> rows;
  if (stmt.select != nullptr) {
    FABRIC_ASSIGN_OR_RETURN(QueryResult sub,
                            ExecuteSelectInternal(self, *stmt.select, 0));
    if (sub.schema.num_columns() !=
        (stmt.columns.empty() ? schema.num_columns()
                              : static_cast<int>(stmt.columns.size()))) {
      return InvalidArgumentError("INSERT ... SELECT arity mismatch");
    }
    rows = std::move(sub.rows);
  } else {
    sql::EvalContext const_context;
    const_context.udx = &db_->udx_resolver();
    for (const auto& exprs : stmt.rows) {
      Row row;
      for (const sql::ExprPtr& e : exprs) {
        FABRIC_ASSIGN_OR_RETURN(Value v, sql::Eval(*e, const_context));
        row.push_back(std::move(v));
      }
      rows.push_back(std::move(row));
    }
  }

  // Map explicit column lists onto full-width rows.
  if (!stmt.columns.empty()) {
    std::vector<int> target_indices;
    for (const std::string& col : stmt.columns) {
      FABRIC_ASSIGN_OR_RETURN(int idx, schema.IndexOf(col));
      target_indices.push_back(idx);
    }
    for (Row& row : rows) {
      if (row.size() != target_indices.size()) {
        return InvalidArgumentError("INSERT arity mismatch");
      }
      Row full(schema.num_columns(), Value::Null());
      for (size_t i = 0; i < target_indices.size(); ++i) {
        full[target_indices[i]] = std::move(row[i]);
      }
      row = std::move(full);
    }
  }
  for (const Row& row : rows) {
    FABRIC_RETURN_IF_ERROR(ValidateRow(schema, row));
  }

  WriteTxn wt = EnsureWriteTxn();
  Status status = [&]() -> Status {
    FABRIC_RETURN_IF_ERROR(db_->LockTableI(self, wt.txn, def->name));
    db_->TouchTable(wt.txn, def->name);
    FABRIC_ASSIGN_OR_RETURN(Database::TableStorage * storage,
                            db_->GetStorage(def->name));

    const CostModel& cost = db_->cost();
    const double scale = db_->EffectiveScale(def->name);
    DataProfile profile = ProfileRows(rows);
    profile.ScaleBy(scale);

    // Client -> initiator wire (VALUES travel with the statement).
    if (stmt.select == nullptr) {
      FABRIC_RETURN_IF_ERROR(StreamToClientReverse(self,
                                                   profile.JdbcWireBytes(cost)));
    }

    // Route rows to their owner nodes.
    std::vector<std::vector<Row>> per_node(db_->num_nodes());
    for (const Row& row : rows) {
      int owner = db_->OwnerNode(*def, row);
      if (owner < 0) {
        for (int n = 0; n < db_->num_nodes(); ++n) {
          per_node[n].push_back(row);
        }
      } else {
        per_node[owner].push_back(row);
      }
    }
    bool replicated = def->segmentation.unsegmented();
    for (int n = 0; n < db_->num_nodes(); ++n) {
      if (per_node[n].empty()) continue;
      // Every live copy of the segment takes the rows: replicated tables
      // write each UP replica, segmented tables write the primary and the
      // buddy (whichever are UP); DOWN copies catch up during recovery.
      std::vector<Database::SegmentCopy> copies;
      if (replicated) {
        if (!db_->node_up(n)) continue;
        copies.push_back(
            Database::SegmentCopy{storage->per_node[n].get(), n});
      } else {
        FABRIC_ASSIGN_OR_RETURN(copies, db_->WriteCopies(storage, n));
      }
      DataProfile node_profile = ProfileRows(per_node[n]);
      node_profile.ScaleBy(scale);
      for (size_t c = 0; c < copies.size(); ++c) {
        const Database::SegmentCopy& copy = copies[c];
        if (copy.host != node_) {
          FABRIC_RETURN_IF_ERROR(db_->network()->Transfer(
              self,
              {db_->node_host(node_).int_egress,
               db_->node_host(copy.host).int_ingress},
              node_profile.raw_bytes));
        }
        FABRIC_RETURN_IF_ERROR(
            net::RunCpu(self, db_->network(), db_->node_host(copy.host),
                        node_profile.CopyParseCpu(cost)));
        std::vector<Row> batch = c + 1 < copies.size()
                                     ? per_node[n]
                                     : std::move(per_node[n]);
        if (stmt.direct) {
          FABRIC_RETURN_IF_ERROR(
              copy.store->InsertPendingDirect(wt.txn, std::move(batch)));
        } else {
          // WOS backpressure: stall admission while this store's
          // committed WOS batches sit at the Tuple Mover's hard cap.
          FABRIC_RETURN_IF_ERROR(db_->tuple_mover()->AdmitWos(
              self, def->name, copy.store, copy.host));
          FABRIC_RETURN_IF_ERROR(
              copy.store->InsertPending(wt.txn, std::move(batch)));
        }
      }
    }
    // Maintain every projection of the table in the same transaction.
    return db_->WriteProjectionRows(self, *def, rows, wt.txn, node_,
                                    stmt.direct, scale);
  }();
  FABRIC_RETURN_IF_ERROR(FinishWriteTxn(self, wt, status));
  QueryResult result;
  result.affected = static_cast<int64_t>(rows.size());
  return result;
}

Result<QueryResult> Session::ExecUpdate(sim::Process& self,
                                        const sql::UpdateStmt& stmt) {
  FABRIC_ASSIGN_OR_RETURN(const TableDef* def,
                          db_->catalog().GetTable(stmt.table));
  const Schema& schema = def->schema;
  std::vector<std::pair<int, const sql::Expr*>> assignments;
  for (const auto& [col, expr] : stmt.assignments) {
    FABRIC_ASSIGN_OR_RETURN(int idx, schema.IndexOf(col));
    assignments.emplace_back(idx, expr.get());
  }

  WriteTxn wt = EnsureWriteTxn();
  int64_t affected = 0;
  Status status = [&]() -> Status {
    FABRIC_RETURN_IF_ERROR(db_->LockTableX(self, wt.txn, def->name));
    db_->TouchTable(wt.txn, def->name);
    FABRIC_ASSIGN_OR_RETURN(Database::TableStorage * storage,
                            db_->GetStorage(def->name));
    Epoch snapshot = db_->current_epoch();
    const CostModel& cost = db_->cost();
    bool replicated = def->segmentation.unsegmented();

    // Compile the WHERE for the vectorized scan; the leftovers run
    // row-at-a-time with the write path's lenient error semantics
    // (an erroring predicate simply doesn't match).
    storage::ScanPredicate predicate;
    sql::ExprPtr residual;
    std::vector<int> residual_columns;
    if (stmt.where != nullptr) {
      sql::CompiledScan compiled =
          sql::CompileScanPredicate(*stmt.where, schema);
      predicate = std::move(compiled.predicate);
      residual = std::move(compiled.residual);
      if (residual != nullptr) {
        std::set<int> cols;
        FABRIC_RETURN_IF_ERROR(CollectColumns(*residual, schema, &cols));
        residual_columns.assign(cols.begin(), cols.end());
      }
    }
    std::vector<int> all_columns(schema.num_columns());
    for (int c = 0; c < schema.num_columns(); ++c) all_columns[c] = c;

    storage::ScanSpec spec;
    spec.as_of = snapshot;
    spec.txn = wt.txn;
    spec.predicate = &predicate;
    if (residual != nullptr) {
      spec.residual = [&](const Row& row) -> Result<bool> {
        sql::EvalContext context;
        context.schema = &schema;
        context.row = &row;
        context.udx = &db_->udx_resolver();
        return sql::EvalPredicateLenient(*residual, context);
      };
    }
    spec.residual_columns = &residual_columns;

    // Anchor-side victim / replacement capture for projection
    // maintenance (full anchor-width rows, each logical row once).
    std::vector<Row> all_victims;
    std::vector<Row> all_replacements;
    bool counted_replicated = false;
    for (int n = 0; n < db_->num_nodes(); ++n) {
      // Replicated: every UP replica applies the update in place.
      // Segmented: the scan reads the segment's serving copy (primary, or
      // buddy when the primary's node is down) and the delete + reinsert
      // hit every live copy.
      if (replicated && !db_->node_up(n)) continue;
      Database::SegmentCopy read_copy;
      if (replicated) {
        read_copy = Database::SegmentCopy{storage->per_node[n].get(), n};
      } else {
        FABRIC_ASSIGN_OR_RETURN(read_copy, db_->ReadCopy(storage, n));
      }
      // Scan cost over the segment's visible rows (all columns, as the
      // row-store UPDATE reads full rows to build replacements).
      storage::ScanSpec node_spec = spec;
      node_spec.cost_columns = &all_columns;
      storage::ScanStats stats;
      FABRIC_ASSIGN_OR_RETURN(std::vector<Row> matched,
                              read_copy.store->Scan(node_spec, &stats));
      DataProfile scanned = stats.visible_profile;
      scanned.ScaleBy(db_->EffectiveScale(def->name));
      FABRIC_RETURN_IF_ERROR(
          net::RunCpu(self, db_->network(),
                      db_->node_host(read_copy.host),
                      scanned.ScanCpu(cost) +
                          static_cast<double>(stats.containers_scanned) *
                              cost.ros_container_open_cpu));
      std::vector<Row> replacements;
      replacements.reserve(matched.size());
      for (const Row& row : matched) {
        Row updated = row;
        sql::EvalContext context;
        context.schema = &schema;
        context.row = &row;
        context.udx = &db_->udx_resolver();
        for (const auto& [idx, expr] : assignments) {
          FABRIC_ASSIGN_OR_RETURN(Value v, sql::Eval(*expr, context));
          updated[idx] = std::move(v);
        }
        FABRIC_RETURN_IF_ERROR(ValidateRow(schema, updated));
        replacements.push_back(std::move(updated));
      }
      // Same selection pipeline as the Scan above, so every copy picks
      // exactly the same rows.
      if (replicated) {
        FABRIC_ASSIGN_OR_RETURN(
            int64_t deleted, read_copy.store->MarkDeletedPending(spec));
        FABRIC_CHECK(deleted == static_cast<int64_t>(replacements.size()));
        // Count each logical row once, from the first replica that is
        // actually UP (node 0's replica may be down).
        if (!counted_replicated) {
          affected += deleted;
          counted_replicated = true;
          all_victims.insert(all_victims.end(), matched.begin(),
                             matched.end());
          all_replacements.insert(all_replacements.end(),
                                  replacements.begin(),
                                  replacements.end());
        }
        if (!replacements.empty()) {
          FABRIC_RETURN_IF_ERROR(read_copy.store->InsertPending(
              wt.txn, std::move(replacements)));
        }
      } else {
        FABRIC_ASSIGN_OR_RETURN(std::vector<Database::SegmentCopy> writes,
                                db_->WriteCopies(storage, n));
        int64_t deleted = -1;
        for (const Database::SegmentCopy& copy : writes) {
          FABRIC_ASSIGN_OR_RETURN(int64_t d,
                                  copy.store->MarkDeletedPending(spec));
          if (deleted < 0) {
            deleted = d;
          } else {
            FABRIC_CHECK(d == deleted) << "buddy copies diverged";
          }
        }
        FABRIC_CHECK(deleted == static_cast<int64_t>(replacements.size()));
        affected += deleted;
        all_victims.insert(all_victims.end(), matched.begin(),
                           matched.end());
        all_replacements.insert(all_replacements.end(),
                                replacements.begin(), replacements.end());
        // Re-route new versions by the (possibly changed) segmentation
        // hash, into every live copy of the owning segment.
        for (Row& row : replacements) {
          int owner = db_->OwnerNode(*def, row);
          FABRIC_ASSIGN_OR_RETURN(
              std::vector<Database::SegmentCopy> owner_writes,
              db_->WriteCopies(storage, owner));
          double row_bytes =
              ProfileRow(row).raw_bytes * db_->EffectiveScale(def->name);
          for (size_t c = 0; c < owner_writes.size(); ++c) {
            const Database::SegmentCopy& copy = owner_writes[c];
            if (copy.host != read_copy.host) {
              FABRIC_RETURN_IF_ERROR(db_->network()->Transfer(
                  self,
                  {db_->node_host(read_copy.host).int_egress,
                   db_->node_host(copy.host).int_ingress},
                  row_bytes));
            }
            Row replica = c + 1 < owner_writes.size() ? row
                                                      : std::move(row);
            FABRIC_RETURN_IF_ERROR(
                copy.store->InsertPending(wt.txn, {std::move(replica)}));
          }
        }
      }
    }
    // Projection maintenance: mark the old images deleted by content,
    // then route the new versions through each projection's own
    // segmentation — same transaction, same commit epoch.
    double scale = db_->EffectiveScale(def->name);
    FABRIC_RETURN_IF_ERROR(db_->DeleteProjectionRows(
        self, *def, all_victims, wt.txn, snapshot, scale));
    return db_->WriteProjectionRows(self, *def, all_replacements, wt.txn,
                                    node_, /*direct=*/false, scale);
  }();
  Status finished = FinishWriteTxn(self, wt, status);
  // Recorded before ack-loss propagation: conditional updates (UPDATE ...
  // WHERE guard) are the connector's election and dedup primitive, and
  // the trace layer must see who won even when the winner's ack was
  // killed mid-flight.
  last_update_affected_ = affected;
  obs::TraceEvent("vertica", "update",
                  {{"table", def->name},
                   {"affected", affected},
                   {"txn", wt.txn}});
  FABRIC_RETURN_IF_ERROR(finished);
  QueryResult result;
  result.affected = affected;
  return result;
}

Result<QueryResult> Session::ExecDelete(sim::Process& self,
                                        const sql::DeleteStmt& stmt) {
  FABRIC_ASSIGN_OR_RETURN(const TableDef* def,
                          db_->catalog().GetTable(stmt.table));
  const Schema& schema = def->schema;
  WriteTxn wt = EnsureWriteTxn();
  int64_t affected = 0;
  Status status = [&]() -> Status {
    FABRIC_RETURN_IF_ERROR(db_->LockTableX(self, wt.txn, def->name));
    db_->TouchTable(wt.txn, def->name);
    FABRIC_ASSIGN_OR_RETURN(Database::TableStorage * storage,
                            db_->GetStorage(def->name));
    Epoch snapshot = db_->current_epoch();
    const CostModel& cost = db_->cost();
    bool replicated = def->segmentation.unsegmented();

    storage::ScanPredicate predicate;
    sql::ExprPtr residual;
    std::vector<int> residual_columns;
    if (stmt.where != nullptr) {
      sql::CompiledScan compiled =
          sql::CompileScanPredicate(*stmt.where, schema);
      predicate = std::move(compiled.predicate);
      residual = std::move(compiled.residual);
      if (residual != nullptr) {
        std::set<int> cols;
        FABRIC_RETURN_IF_ERROR(CollectColumns(*residual, schema, &cols));
        residual_columns.assign(cols.begin(), cols.end());
      }
    }
    storage::ScanSpec spec;
    spec.as_of = snapshot;
    spec.txn = wt.txn;
    spec.predicate = &predicate;
    if (residual != nullptr) {
      spec.residual = [&](const Row& row) -> Result<bool> {
        sql::EvalContext context;
        context.schema = &schema;
        context.row = &row;
        context.udx = &db_->udx_resolver();
        return sql::EvalPredicateLenient(*residual, context);
      };
    }
    spec.residual_columns = &residual_columns;

    // Victim capture (full anchor-width rows, each logical row once)
    // for projection maintenance below.
    std::vector<Row> all_victims;
    bool counted_replicated = false;
    for (int n = 0; n < db_->num_nodes(); ++n) {
      if (replicated) {
        // Every UP replica applies the delete; count each logical row
        // once, from the first replica that is actually UP.
        if (!db_->node_up(n)) continue;
        storage::SegmentStore* store = storage->per_node[n].get();
        FABRIC_ASSIGN_OR_RETURN(int64_t visible_count,
                                store->CountVisible(snapshot, wt.txn));
        DataProfile scanned;
        scanned.rows = static_cast<double>(visible_count);
        scanned.ScaleBy(db_->EffectiveScale(def->name));
        FABRIC_RETURN_IF_ERROR(net::RunCpu(self, db_->network(),
                                           db_->node_host(n),
                                           scanned.ScanCpu(cost)));
        FABRIC_ASSIGN_OR_RETURN(
            int64_t deleted,
            store->MarkDeletedPending(
                spec, counted_replicated ? nullptr : &all_victims));
        if (!counted_replicated) {
          affected += deleted;
          counted_replicated = true;
        }
      } else {
        // Scan cost on the segment's serving copy; the delete marks land
        // on every live copy.
        FABRIC_ASSIGN_OR_RETURN(Database::SegmentCopy read_copy,
                                db_->ReadCopy(storage, n));
        FABRIC_ASSIGN_OR_RETURN(
            int64_t visible_count,
            read_copy.store->CountVisible(snapshot, wt.txn));
        DataProfile scanned;
        scanned.rows = static_cast<double>(visible_count);
        scanned.ScaleBy(db_->EffectiveScale(def->name));
        FABRIC_RETURN_IF_ERROR(
            net::RunCpu(self, db_->network(),
                        db_->node_host(read_copy.host),
                        scanned.ScanCpu(cost)));
        FABRIC_ASSIGN_OR_RETURN(std::vector<Database::SegmentCopy> writes,
                                db_->WriteCopies(storage, n));
        int64_t deleted = -1;
        for (const Database::SegmentCopy& copy : writes) {
          FABRIC_ASSIGN_OR_RETURN(
              int64_t d,
              copy.store->MarkDeletedPending(
                  spec, deleted < 0 ? &all_victims : nullptr));
          if (deleted < 0) {
            deleted = d;
          } else {
            FABRIC_CHECK(d == deleted) << "buddy copies diverged";
          }
        }
        affected += deleted;
      }
    }
    // Keep every projection's view of the table in lockstep with the
    // anchor delete.
    return db_->DeleteProjectionRows(self, *def, all_victims, wt.txn,
                                     snapshot,
                                     db_->EffectiveScale(def->name));
  }();
  FABRIC_RETURN_IF_ERROR(FinishWriteTxn(self, wt, status));
  QueryResult result;
  result.affected = affected;
  return result;
}

// --------------------------------------------------------------- SELECT

// Memory-budget context for the aggregate path: when the admission
// grant caps the hash table, overflowing groups spill to partitioned
// runs on the node's local disk (grace hash) and merge back at the end.
// The callbacks charge the simulated disk; results stay byte-identical
// to the unbudgeted run because every partial is mergeable and the final
// collection re-sorts by encoded group key. Declared in session.h so the
// scan/join helpers can thread it through as a parameter.
struct SpillEnv {
  double budget_bytes = 0;  // 0 = unlimited (no spilling)
  int partitions = 8;
  std::function<Status(double bytes)> charge_write;
  std::function<Status(double bytes)> charge_read;
  std::function<void(double bytes, int64_t groups)> on_spill;
};

namespace {

// Estimated resident size of one hash-table entry (key + partial
// states); deliberately coarse — the budget is a simulation knob, not a
// malloc audit.
double GroupBytes(const std::string& key,
                  const std::vector<AggPartial>& partials) {
  double bytes = static_cast<double>(key.size()) + 48;
  for (const AggPartial& p : partials) {
    bytes += 56 + static_cast<double>(p.udx_state.size());
  }
  return bytes;
}

// FNV-1a over the encoded group key: the spill partition function.
int SpillPartitionOf(const std::string& key, int partitions) {
  uint64_t h = 1469598103934665603ULL;
  for (unsigned char c : key) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return static_cast<int>(h % static_cast<uint64_t>(partitions));
}

// Applies a SELECT's WHERE / aggregation / projection / ORDER / LIMIT to
// an in-memory rowset (the initiator-local part of query execution,
// shared by base tables, views and system tables).
Result<QueryResult> LocalSelect(const std::vector<Row>& rows,
                                const Schema& schema,
                                const sql::SelectStmt& select,
                                const sql::UdxResolver* udx,
                                const sql::AggregateUdxResolver* agg_udx,
                                PipelineCompiler* pipeline,
                                const SpillEnv* spill = nullptr) {
  const bool budgeted = spill != nullptr && spill->budget_bytes > 0;
  // Compiled fast path: a cached vectorized pipeline runs the whole
  // body (filter → project/aggregate) over row blocks. It either
  // produces exactly what the interpreter below would — same rows, same
  // order, same schema — or bails (dynamic type surprise, division by
  // zero, UDx error, uncompilable shape), in which case the interpreter
  // runs from scratch and stays authoritative for results and errors.
  // A budgeted run skips it: the compiled aggregate cannot spill.
  if (pipeline != nullptr && pipeline->enabled() && !budgeted) {
    std::shared_ptr<const CompiledQuery> compiled =
        pipeline->GetOrCompileSelect(select, schema, udx, agg_udx);
    if (compiled != nullptr) {
      auto compiled_rows = exec::RunCompiledSelect(compiled->select, rows);
      if (compiled_rows.has_value()) {
        QueryResult result;
        result.schema = compiled->out_schema;
        result.rows = std::move(*compiled_rows);
        FABRIC_RETURN_IF_ERROR(ApplyOrderAndLimit(select, &result));
        obs::IncrCounter("sql.compiled_pipelines");
        return result;
      }
    }
    obs::IncrCounter("sql.interpreted_fallbacks");
  }

  // Filter.
  std::vector<const Row*> filtered;
  filtered.reserve(rows.size());
  for (const Row& row : rows) {
    if (select.where != nullptr) {
      sql::EvalContext context;
      context.schema = &schema;
      context.row = &row;
      context.udx = udx;
      context.aggregate_udx = agg_udx;
      FABRIC_ASSIGN_OR_RETURN(bool keep,
                              sql::EvalPredicate(*select.where, context));
      if (!keep) continue;
    }
    filtered.push_back(&row);
  }

  bool aggregate = !select.group_by.empty();
  for (const sql::SelectItem& item : select.items) {
    if (!item.star && sql::ContainsAggregate(*item.expr, agg_udx)) {
      aggregate = true;
    }
  }

  QueryResult result;
  if (!aggregate) {
    // Output schema.
    std::vector<storage::ColumnDef> out_columns;
    std::vector<const sql::Expr*> exprs;
    for (size_t i = 0; i < select.items.size(); ++i) {
      const sql::SelectItem& item = select.items[i];
      if (item.star) {
        for (int c = 0; c < schema.num_columns(); ++c) {
          out_columns.push_back(schema.column(c));
          exprs.push_back(nullptr);  // placeholder: positional copy
        }
        continue;
      }
      out_columns.push_back({ItemName(item, static_cast<int>(i)),
                             InferType(*item.expr, schema)});
      exprs.push_back(item.expr.get());
    }
    result.schema = Schema(std::move(out_columns));
    for (const Row* row : filtered) {
      Row out;
      out.reserve(exprs.size());
      int star_cursor = 0;
      for (const sql::Expr* e : exprs) {
        if (e == nullptr) {
          out.push_back((*row)[star_cursor++]);
          continue;
        }
        sql::EvalContext context;
        context.schema = &schema;
        context.row = row;
        context.udx = udx;
        context.aggregate_udx = agg_udx;
        FABRIC_ASSIGN_OR_RETURN(Value v, sql::Eval(*e, context));
        out.push_back(std::move(v));
      }
      result.rows.push_back(std::move(out));
    }
    FABRIC_RETURN_IF_ERROR(ApplyOrderAndLimit(select, &result));
    return result;
  }

  // Aggregate path: items must be group-by columns or aggregate calls.
  std::vector<int> group_cols;
  for (const std::string& name : select.group_by) {
    FABRIC_ASSIGN_OR_RETURN(int idx, schema.IndexOf(name));
    group_cols.push_back(idx);
  }
  struct OutItem {
    bool is_group = false;
    int group_pos = 0;           // index into group_cols
    AggSpec agg;                 // when !is_group
  };
  std::vector<OutItem> out_items;
  std::vector<storage::ColumnDef> out_columns;
  for (size_t i = 0; i < select.items.size(); ++i) {
    const sql::SelectItem& item = select.items[i];
    if (item.star) {
      return InvalidArgumentError("SELECT * with aggregation");
    }
    const sql::Expr& e = *item.expr;
    OutItem out;
    if (e.kind == sql::Expr::Kind::kColumnRef) {
      FABRIC_ASSIGN_OR_RETURN(int idx, schema.IndexOf(e.column));
      auto it = std::find(group_cols.begin(), group_cols.end(), idx);
      if (it == group_cols.end()) {
        return InvalidArgumentError(
            StrCat("column '", e.column, "' not in GROUP BY"));
      }
      out.is_group = true;
      out.group_pos = static_cast<int>(it - group_cols.begin());
      out_columns.push_back({ItemName(item, static_cast<int>(i)),
                             schema.column(idx).type});
    } else if (e.kind == sql::Expr::Kind::kCall &&
               sql::IsAggregateFunction(e.function)) {
      FABRIC_ASSIGN_OR_RETURN(out.agg.kind, AggKindOf(e.function));
      out.agg.arg = e.args.empty() ? nullptr : e.args[0].get();
      out_columns.push_back({ItemName(item, static_cast<int>(i)),
                             InferType(e, schema)});
    } else if (e.kind == sql::Expr::Kind::kCall && agg_udx != nullptr &&
               *agg_udx && (*agg_udx)(e.function) != nullptr) {
      // Aggregate UDx call: first argument is the aggregated expression,
      // the rest must be constants handed to init (e.g. the precision).
      const sql::AggregateUdx* udx_def = (*agg_udx)(e.function);
      if (e.args.empty()) {
        return InvalidArgumentError(
            StrCat(e.function, " requires an argument"));
      }
      out.agg.kind = AggSpec::Kind::kUdx;
      out.agg.udx = udx_def;
      out.agg.arg = e.args[0].get();
      std::vector<Value> extra;
      for (size_t a = 1; a < e.args.size(); ++a) {
        sql::EvalContext const_context;
        const_context.udx = udx;
        auto v = sql::Eval(*e.args[a], const_context);
        if (!v.ok()) {
          return InvalidArgumentError(
              StrCat(e.function, " extra arguments must be constants: ",
                     v.status().message()));
        }
        extra.push_back(std::move(*v));
      }
      FABRIC_ASSIGN_OR_RETURN(out.agg.init_state, udx_def->init(extra));
      out_columns.push_back({ItemName(item, static_cast<int>(i)),
                             udx_def->output_type});
    } else {
      return InvalidArgumentError(
          "aggregate queries support only group columns and simple "
          "aggregate calls");
    }
    out_items.push_back(std::move(out));
  }
  result.schema = Schema(std::move(out_columns));

  std::map<std::string, std::pair<Row, std::vector<AggPartial>>> groups;
  // Grace-hash spill state: partitioned runs of (key, key values,
  // partials) pushed out whenever the resident table exceeds the grant.
  struct SpilledGroup {
    std::string key;
    Row key_values;
    std::vector<AggPartial> partials;
  };
  const int spill_partitions =
      budgeted ? std::max(1, spill->partitions) : 1;
  std::vector<std::vector<SpilledGroup>> runs(
      budgeted ? spill_partitions : 0);
  double resident_bytes = 0;
  auto spill_resident = [&]() -> Status {
    if (groups.empty()) return Status::OK();
    double bytes = 0;
    int64_t spilled = static_cast<int64_t>(groups.size());
    for (auto& [key, group] : groups) {
      bytes += GroupBytes(key, group.second);
      int p = SpillPartitionOf(key, spill_partitions);
      runs[p].push_back(SpilledGroup{key, std::move(group.first),
                                     std::move(group.second)});
    }
    groups.clear();
    resident_bytes = 0;
    if (spill->charge_write) {
      FABRIC_RETURN_IF_ERROR(spill->charge_write(bytes));
    }
    if (spill->on_spill) spill->on_spill(bytes, spilled);
    return Status::OK();
  };
  for (const Row* row : filtered) {
    Row key_values;
    for (int c : group_cols) key_values.push_back((*row)[c]);
    std::string key = GroupKeyOf(*row, group_cols);
    auto [it, inserted] = groups.try_emplace(
        key, std::make_pair(std::move(key_values),
                            std::vector<AggPartial>(out_items.size())));
    auto& partials = it->second.second;
    for (size_t i = 0; i < out_items.size(); ++i) {
      if (out_items[i].is_group) continue;
      Value v = Value::Int64(1);  // COUNT(*) counts rows
      if (out_items[i].agg.arg != nullptr) {
        sql::EvalContext context;
        context.schema = &schema;
        context.row = row;
        context.udx = udx;
        context.aggregate_udx = agg_udx;
        FABRIC_ASSIGN_OR_RETURN(v, sql::Eval(*out_items[i].agg.arg,
                                             context));
      }
      FABRIC_RETURN_IF_ERROR(UpdatePartial(out_items[i].agg, v,
                                           &partials[i]));
    }
    if (budgeted && inserted) {
      resident_bytes += GroupBytes(it->first, partials);
      if (resident_bytes > spill->budget_bytes) {
        FABRIC_RETURN_IF_ERROR(spill_resident());
      }
    }
  }
  // Aggregate queries with no groups still return one row.
  if (groups.empty() && group_cols.empty() &&
      (runs.empty() ||
       std::all_of(runs.begin(), runs.end(),
                   [](const std::vector<SpilledGroup>& r) {
                     return r.empty();
                   }))) {
    groups.try_emplace("", std::make_pair(
                               Row{},
                               std::vector<AggPartial>(out_items.size())));
  }
  bool any_spilled =
      !runs.empty() &&
      std::any_of(runs.begin(), runs.end(),
                  [](const std::vector<SpilledGroup>& r) {
                    return !r.empty();
                  });
  if (any_spilled) {
    // Merge phase: push the resident remainder out too, then rebuild
    // each partition in turn. Partitions hold disjoint key sets and the
    // final collection map is ordered by encoded key — exactly the
    // iteration order of the unbudgeted hash table — so the output is
    // byte-identical to the in-memory run (modulo float-sum rounding,
    // which integer-valued data does not exercise).
    FABRIC_RETURN_IF_ERROR(spill_resident());
    std::map<std::string, std::pair<Row, std::vector<AggPartial>>> merged;
    for (int p = 0; p < spill_partitions; ++p) {
      if (runs[p].empty()) continue;
      double bytes = 0;
      std::map<std::string, std::pair<Row, std::vector<AggPartial>>> part;
      for (SpilledGroup& sg : runs[p]) {
        bytes += GroupBytes(sg.key, sg.partials);
        auto [it, inserted] = part.try_emplace(
            sg.key, std::make_pair(std::move(sg.key_values),
                                   std::vector<AggPartial>()));
        if (inserted) {
          it->second.second = std::move(sg.partials);
          continue;
        }
        for (size_t i = 0; i < out_items.size(); ++i) {
          if (out_items[i].is_group) continue;
          FABRIC_RETURN_IF_ERROR(MergePartial(
              out_items[i].agg, sg.partials[i], &it->second.second[i]));
        }
      }
      if (spill->charge_read) {
        FABRIC_RETURN_IF_ERROR(spill->charge_read(bytes));
      }
      for (auto& [key, group] : part) {
        merged.try_emplace(key, std::move(group));
      }
    }
    groups = std::move(merged);
  }
  for (auto& [key, group] : groups) {
    Row out;
    for (size_t i = 0; i < out_items.size(); ++i) {
      if (out_items[i].is_group) {
        out.push_back(group.first[out_items[i].group_pos]);
      } else {
        FABRIC_ASSIGN_OR_RETURN(
            Value v, FinalizePartial(out_items[i].agg, group.second[i]));
        out.push_back(std::move(v));
      }
    }
    result.rows.push_back(std::move(out));
  }
  FABRIC_RETURN_IF_ERROR(ApplyOrderAndLimit(select, &result));
  return result;
}

}  // namespace

Result<QueryResult> Session::SystemTable(
    const std::string& lower_name) const {
  QueryResult result;
  if (lower_name == "v_catalog.nodes") {
    result.schema = Schema({{"node_id", DataType::kInt64},
                            {"node_name", DataType::kVarchar},
                            {"node_address", DataType::kVarchar},
                            {"state", DataType::kVarchar}});
    for (int i = 0; i < db_->num_nodes(); ++i) {
      result.rows.push_back(
          {Value::Int64(i), Value::Varchar(db_->node_name(i)),
           Value::Varchar(db_->node_address(i)),
           Value::Varchar(std::string(
               NodeStateName(db_->node_state(i))))});
    }
    return result;
  }
  if (lower_name == "v_catalog.segments") {
    // Signed ring bounds; the wrap segment's upper bound is NULL (+inf).
    result.schema = Schema({{"table_name", DataType::kVarchar},
                            {"node_id", DataType::kInt64},
                            {"node_name", DataType::kVarchar},
                            {"segment_lower", DataType::kInt64},
                            {"segment_upper", DataType::kInt64},
                            {"buddy_node_id", DataType::kInt64},
                            {"buddy_node_name", DataType::kVarchar}});
    for (const std::string& table : db_->catalog().TableNames()) {
      auto def = db_->catalog().GetTable(table);
      if (!def.ok() || (*def)->segmentation.unsegmented()) continue;
      const auto& ranges = db_->node_ranges();
      for (int n = 0; n < db_->num_nodes(); ++n) {
        Value upper = ranges[n].upper == 0
                          ? Value::Null()
                          : Value::Int64(sql::RingHashToSigned(
                                ranges[n].upper));
        // k=1 buddy placement: single-node clusters keep no buddy copy.
        Value buddy_id = db_->num_nodes() > 1
                             ? Value::Int64(db_->buddy_node(n))
                             : Value::Null();
        Value buddy_name =
            db_->num_nodes() > 1
                ? Value::Varchar(db_->node_name(db_->buddy_node(n)))
                : Value::Null();
        result.rows.push_back(
            {Value::Varchar(table), Value::Int64(n),
             Value::Varchar(db_->node_name(n)),
             Value::Int64(sql::RingHashToSigned(ranges[n].lower)),
             upper, buddy_id, buddy_name});
      }
    }
    return result;
  }
  if (lower_name == "v_catalog.epochs") {
    result.schema = Schema({{"current_epoch", DataType::kInt64},
                            {"last_good_epoch", DataType::kInt64},
                            {"ahm_epoch", DataType::kInt64},
                            {"retained_epochs", DataType::kInt64}});
    result.rows.push_back(
        {Value::Int64(static_cast<int64_t>(db_->current_epoch())),
         Value::Int64(static_cast<int64_t>(db_->current_epoch())),
         Value::Int64(static_cast<int64_t>(db_->ahm())),
         Value::Int64(static_cast<int64_t>(db_->epoch_commits().size()))});
    return result;
  }
  if (lower_name == "v_monitor.tuple_mover") {
    TupleMover* tm = db_->tuple_mover();
    result.schema = Schema({{"node_id", DataType::kInt64},
                            {"node_name", DataType::kVarchar},
                            {"operation", DataType::kVarchar},
                            {"runs", DataType::kInt64},
                            {"bytes", DataType::kFloat64},
                            {"is_armed", DataType::kBool}});
    for (int n = 0; n < db_->num_nodes(); ++n) {
      const TupleMover::TaskStats& mo = tm->moveout_stats(n);
      const TupleMover::TaskStats& me = tm->mergeout_stats(n);
      result.rows.push_back({Value::Int64(n),
                             Value::Varchar(db_->node_name(n)),
                             Value::Varchar("moveout"),
                             Value::Int64(mo.runs), Value::Float64(mo.bytes),
                             Value::Bool(mo.armed)});
      result.rows.push_back({Value::Int64(n),
                             Value::Varchar(db_->node_name(n)),
                             Value::Varchar("mergeout"),
                             Value::Int64(me.runs), Value::Float64(me.bytes),
                             Value::Bool(me.armed)});
    }
    // Cluster-wide AHM/purge row: runs = AHM advances, bytes = purged rows.
    result.rows.push_back(
        {Value::Int64(-1), Value::Varchar("cluster"), Value::Varchar("ahm"),
         Value::Int64(tm->ahm_advances()),
         Value::Float64(static_cast<double>(tm->purged_rows())),
         Value::Bool(false)});
    return result;
  }
  if (lower_name == "v_monitor.storage_containers") {
    result.schema = Schema({{"table_name", DataType::kVarchar},
                            {"node_id", DataType::kInt64},
                            {"copy", DataType::kVarchar},
                            {"container_id", DataType::kInt64},
                            {"rows", DataType::kInt64},
                            {"deleted_rows", DataType::kInt64},
                            {"raw_bytes", DataType::kFloat64},
                            {"encoded_bytes", DataType::kFloat64},
                            {"min_epoch", DataType::kInt64},
                            {"max_epoch", DataType::kInt64},
                            {"is_committed", DataType::kBool}});
    for (int n = 0; n < db_->num_nodes(); ++n) {
      for (const Database::HostedStore& hs : db_->HostedStores(n)) {
        // Projection containers are reported by
        // v_monitor.projection_storage, not here.
        if (!hs.projection.empty()) continue;
        std::vector<storage::ContainerStats> stats = hs.store->RosStats();
        for (size_t i = 0; i < stats.size(); ++i) {
          const storage::ContainerStats& s = stats[i];
          result.rows.push_back(
              {Value::Varchar(hs.table), Value::Int64(n),
               Value::Varchar(hs.is_buddy ? "buddy" : "primary"),
               Value::Int64(static_cast<int64_t>(i)), Value::Int64(s.rows),
               Value::Int64(s.deleted_rows), Value::Float64(s.raw_bytes),
               Value::Float64(s.encoded_bytes),
               Value::Int64(static_cast<int64_t>(s.min_epoch)),
               Value::Int64(static_cast<int64_t>(s.max_epoch)),
               Value::Bool(s.committed)});
        }
      }
    }
    return result;
  }
  if (lower_name == "v_monitor.resource_pool_status") {
    result.schema = Schema({{"node_id", DataType::kInt64},
                            {"node_name", DataType::kVarchar},
                            {"pool_name", DataType::kVarchar},
                            {"priority", DataType::kInt64},
                            {"max_concurrency", DataType::kInt64},
                            {"memory_budget_bytes", DataType::kFloat64},
                            {"memory_inuse_bytes", DataType::kFloat64},
                            {"running_query_count", DataType::kInt64},
                            {"queue_depth", DataType::kInt64},
                            {"admitted", DataType::kInt64},
                            {"borrowed", DataType::kInt64},
                            {"queue_timeouts", DataType::kInt64},
                            {"rejected", DataType::kInt64},
                            {"spills", DataType::kInt64},
                            {"spill_bytes", DataType::kFloat64},
                            {"queue_wait_seconds", DataType::kFloat64}});
    wm::WorkloadManager* wm = db_->workload_manager();
    if (wm != nullptr) {
      for (const wm::WorkloadManager::PoolStatus& s : wm->PoolStatusRows()) {
        result.rows.push_back(
            {Value::Int64(s.node), Value::Varchar(db_->node_name(s.node)),
             Value::Varchar(s.pool), Value::Int64(s.priority),
             Value::Int64(s.max_concurrency),
             Value::Float64(s.memory_budget),
             Value::Float64(s.memory_inuse), Value::Int64(s.running),
             Value::Int64(s.queued), Value::Int64(s.admitted),
             Value::Int64(s.borrowed), Value::Int64(s.timeouts),
             Value::Int64(s.rejected), Value::Int64(s.spills),
             Value::Float64(s.spill_bytes),
             Value::Float64(s.queue_wait_seconds)});
      }
    }
    return result;
  }
  if (lower_name == "v_monitor.resource_queues") {
    result.schema = Schema({{"node_id", DataType::kInt64},
                            {"node_name", DataType::kVarchar},
                            {"pool_name", DataType::kVarchar},
                            {"priority", DataType::kInt64},
                            {"position", DataType::kInt64},
                            {"memory_requested_bytes", DataType::kFloat64},
                            {"queued_at", DataType::kFloat64}});
    wm::WorkloadManager* wm = db_->workload_manager();
    if (wm != nullptr) {
      for (const wm::WorkloadManager::QueueEntry& q : wm->QueueRows()) {
        result.rows.push_back(
            {Value::Int64(q.node), Value::Varchar(db_->node_name(q.node)),
             Value::Varchar(q.pool), Value::Int64(q.priority),
             Value::Int64(q.position), Value::Float64(q.memory_requested),
             Value::Float64(q.queued_at)});
      }
    }
    return result;
  }
  if (lower_name == "v_catalog.projections") {
    result.schema = Schema({{"projection_name", DataType::kVarchar},
                            {"anchor_table", DataType::kVarchar},
                            {"columns", DataType::kVarchar},
                            {"sort_columns", DataType::kVarchar},
                            {"encodings", DataType::kVarchar},
                            // "is_segmented": SEGMENTED is a keyword, a
                            // bare `segmented` column would not parse.
                            {"is_segmented", DataType::kBool},
                            {"segment_columns", DataType::kVarchar},
                            {"create_epoch", DataType::kInt64}});
    for (const std::string& name : db_->catalog().ProjectionNames()) {
      auto proj = db_->catalog().GetProjection(name);
      if (!proj.ok()) continue;
      const ProjectionDef& p = **proj;
      auto join_names = [&p](const std::vector<int>& cols) {
        std::string out;
        for (int c : cols) {
          if (!out.empty()) out += ",";
          out += p.schema.column(c).name;
        }
        return out;
      };
      std::vector<int> all_columns(p.schema.num_columns());
      for (int c = 0; c < p.schema.num_columns(); ++c) all_columns[c] = c;
      std::string encodings;
      for (storage::Encoding e : p.encodings) {
        if (!encodings.empty()) encodings += ",";
        encodings += storage::EncodingName(e);
      }
      result.rows.push_back(
          {Value::Varchar(p.name), Value::Varchar(p.anchor),
           Value::Varchar(join_names(all_columns)),
           Value::Varchar(join_names(p.sort_columns)),
           Value::Varchar(encodings),
           Value::Bool(!p.segmentation.unsegmented()),
           Value::Varchar(join_names(p.segmentation.columns)),
           Value::Int64(static_cast<int64_t>(p.create_epoch))});
    }
    return result;
  }
  if (lower_name == "v_monitor.projection_storage") {
    result.schema = Schema({{"projection_name", DataType::kVarchar},
                            {"anchor_table", DataType::kVarchar},
                            {"node_id", DataType::kInt64},
                            {"copy", DataType::kVarchar},
                            {"containers", DataType::kInt64},
                            {"rows", DataType::kInt64},
                            {"deleted_rows", DataType::kInt64},
                            {"raw_bytes", DataType::kFloat64},
                            {"encoded_bytes", DataType::kFloat64},
                            {"wos_batches", DataType::kInt64}});
    for (int n = 0; n < db_->num_nodes(); ++n) {
      for (const Database::HostedStore& hs : db_->HostedStores(n)) {
        if (hs.projection.empty()) continue;
        auto proj = db_->catalog().GetProjection(hs.projection);
        int64_t rows = 0;
        int64_t deleted = 0;
        double raw = 0;
        double encoded = 0;
        std::vector<storage::ContainerStats> stats = hs.store->RosStats();
        for (const storage::ContainerStats& s : stats) {
          rows += s.rows;
          deleted += s.deleted_rows;
          raw += s.raw_bytes;
          encoded += s.encoded_bytes;
        }
        result.rows.push_back(
            {Value::Varchar(hs.projection),
             Value::Varchar(proj.ok() ? (*proj)->anchor : hs.table),
             Value::Int64(n),
             Value::Varchar(hs.is_buddy ? "buddy" : "primary"),
             Value::Int64(static_cast<int64_t>(stats.size())),
             Value::Int64(rows), Value::Int64(deleted), Value::Float64(raw),
             Value::Float64(encoded),
             Value::Int64(hs.store->num_wos_batches())});
      }
    }
    return result;
  }
  if (lower_name == "v_catalog.tables") {
    result.schema = Schema({{"table_name", DataType::kVarchar},
                            {"is_view", DataType::kBool},
                            {"segmented", DataType::kBool}});
    for (const std::string& table : db_->catalog().TableNames()) {
      auto def = db_->catalog().GetTable(table);
      result.rows.push_back(
          {Value::Varchar(table), Value::Bool(false),
           Value::Bool(def.ok() &&
                       !(*def)->segmentation.unsegmented())});
    }
    for (const std::string& view : db_->catalog().ViewNames()) {
      result.rows.push_back({Value::Varchar(view), Value::Bool(true),
                             Value::Bool(false)});
    }
    return result;
  }
  if (lower_name == "v_monitor.query_requests") {
    result.schema = Schema({{"request_id", DataType::kInt64},
                            {"table_name", DataType::kVarchar},
                            {"join_table", DataType::kVarchar},
                            {"referenced_columns", DataType::kVarchar},
                            {"group_by_columns", DataType::kVarchar},
                            {"join_key_columns", DataType::kVarchar},
                            {"aggregate", DataType::kBool},
                            {"pool_name", DataType::kVarchar},
                            {"strategy", DataType::kVarchar},
                            {"started_at", DataType::kFloat64},
                            {"duration_seconds", DataType::kFloat64}});
    auto csv = [](const std::vector<std::string>& names) {
      std::string out;
      for (const std::string& name : names) {
        if (!out.empty()) out += ",";
        out += name;
      }
      return out;
    };
    for (const QueryRequest& request : db_->query_requests()) {
      result.rows.push_back(
          {Value::Int64(request.request_id), Value::Varchar(request.table),
           Value::Varchar(request.join_table),
           Value::Varchar(csv(request.referenced)),
           Value::Varchar(csv(request.group_by)),
           Value::Varchar(csv(request.join_keys)),
           Value::Bool(request.aggregate), Value::Varchar(request.pool),
           Value::Varchar(request.strategy),
           Value::Float64(request.started_at),
           Value::Float64(request.duration)});
    }
    return result;
  }
  if (lower_name == "v_monitor.design_proposals") {
    result.schema = Schema({{"proposal_name", DataType::kVarchar},
                            {"anchor_table", DataType::kVarchar},
                            {"columns", DataType::kVarchar},
                            {"sort_columns", DataType::kVarchar},
                            {"segment_columns", DataType::kVarchar},
                            {"benefit", DataType::kFloat64},
                            {"storage_bytes", DataType::kFloat64},
                            {"ddl", DataType::kVarchar}});
    auto csv = [](const std::vector<std::string>& names) {
      std::string out;
      for (const std::string& name : names) {
        if (!out.empty()) out += ",";
        out += name;
      }
      return out;
    };
    for (const designer::Proposal& proposal : db_->design_proposals()) {
      result.rows.push_back(
          {Value::Varchar(proposal.name), Value::Varchar(proposal.anchor),
           Value::Varchar(csv(proposal.columns)),
           Value::Varchar(csv(proposal.sort_columns)),
           Value::Varchar(csv(proposal.segment_columns)),
           Value::Float64(proposal.benefit),
           Value::Float64(proposal.storage_bytes),
           Value::Varchar(proposal.ddl)});
    }
    return result;
  }
  return NotFoundError(
      StrCat("unknown system table '", lower_name, "'"));
}

Result<QueryResult> Session::ExecSelect(sim::Process& self,
                                        const sql::SelectStmt& select,
                                        bool to_client, int view_depth) {
  if (view_depth > 8) {
    return InvalidArgumentError("view nesting too deep");
  }
  const CostModel& cost = db_->cost();
  const sql::UdxResolver* udx = &db_->udx_resolver();
  const sql::AggregateUdxResolver* agg_udx = &db_->aggregate_udx_resolver();

  // Memory budget from the statement's admission grant: beyond it the
  // aggregate hash table spills partitioned runs to the initiator's
  // local disk and merges them back (grace hash), byte-identical to the
  // unbudgeted run.
  SpillEnv spill_env;
  const SpillEnv* spill = nullptr;
  if (wm_grant_.valid() && wm_grant_.memory > 0) {
    auto charge_disk = [this, &self](double bytes) -> Status {
      const net::Host& host = db_->node_host(node_);
      if (host.has_disk()) {
        return db_->network()->Transfer(self, {host.disk}, bytes);
      }
      return self.Sleep(bytes / db_->cost().disk_read_bandwidth);
    };
    spill_env.budget_bytes = wm_grant_.memory;
    spill_env.charge_write = charge_disk;
    spill_env.charge_read = charge_disk;
    spill_env.on_spill = [this](double bytes, int64_t spilled_groups) {
      db_->workload_manager()->ReportSpill(wm_grant_, bytes);
      obs::IncrCounter("sql.agg_spills");
      obs::IncrCounter("sql.agg_spill_groups",
                       static_cast<double>(spilled_groups));
    };
    spill = &spill_env;
  }

  // Aggregates (builtin or UDx) cannot be evaluated per row, so a WHERE
  // clause containing one is rejected at planning — the scan's residual
  // evaluator never sees the call.
  if (select.where != nullptr &&
      sql::ContainsAggregate(*select.where, agg_udx)) {
    return InvalidArgumentError(
        "aggregate functions are not allowed in WHERE");
  }

  // FROM-less SELECT (constant expressions).
  if (select.from.empty()) {
    std::vector<Row> one_row = {Row{}};
    Schema empty_schema;
    FABRIC_ASSIGN_OR_RETURN(QueryResult result,
                            LocalSelect(one_row, empty_schema, select,
                                        udx, agg_udx,
                                        db_->pipeline_compiler(), spill));
    if (to_client) {
      FABRIC_RETURN_IF_ERROR(StreamToClient(self, 64, net::kUnlimitedRate));
    }
    return result;
  }

  std::string from = ToLower(select.from);

  // INNER JOIN: a planned merge/hash join when both sides are base
  // tables with a simple equality ON (ExecJoin), with a recursive
  // scan-then-join fallback for views, system tables and complex ON
  // clauses. Views over joins are what let V2S push join processing into
  // Vertica (Section 3.1.1).
  if (!select.join.empty()) {
    return ExecJoin(self, select, to_client, view_depth, spill);
  }

  // System tables.
  if (StartsWith(from, "v_catalog.") || StartsWith(from, "v_monitor.")) {
    FABRIC_ASSIGN_OR_RETURN(QueryResult base, SystemTable(from));
    FABRIC_ASSIGN_OR_RETURN(QueryResult result,
                            LocalSelect(base.rows, base.schema, select,
                                        udx, agg_udx,
                                        db_->pipeline_compiler(), spill));
    if (to_client) {
      DataProfile profile = ProfileRows(result.rows);
      FABRIC_RETURN_IF_ERROR(StreamToClient(
          self, profile.JdbcWireBytes(cost), net::kUnlimitedRate));
    }
    return result;
  }

  // Views: execute the stored SELECT inside the database (this is how a
  // pre-defined view lets V2S push joins/aggregations down, Sec. 3.1.1),
  // then run the outer query over its result on the initiator.
  if (db_->catalog().HasView(select.from)) {
    FABRIC_ASSIGN_OR_RETURN(const ViewDef* view,
                            db_->catalog().GetView(select.from));
    FABRIC_ASSIGN_OR_RETURN(sql::Statement view_statement,
                            sql::Parse(view->query_sql));
    auto* view_select = std::get_if<sql::SelectStmt>(&view_statement);
    if (view_select == nullptr) {
      return InternalError("view body is not a SELECT");
    }
    // Propagate the outer epoch so all V2S partition queries of a view
    // read one snapshot.
    if (select.at_epoch >= 0 && view_select->at_epoch < 0) {
      view_select->at_epoch = select.at_epoch;
    }
    FABRIC_ASSIGN_OR_RETURN(
        QueryResult sub,
        ExecSelect(self, *view_select, /*to_client=*/false,
                   view_depth + 1));
    FABRIC_ASSIGN_OR_RETURN(QueryResult result,
                            LocalSelect(sub.rows, sub.schema, select,
                                        udx, agg_udx,
                                        db_->pipeline_compiler(), spill));
    if (to_client) {
      DataProfile profile = ProfileRows(result.rows);
      profile.ScaleBy(cost.data_scale);
      double wire = profile.JdbcWireBytes(cost);
      double cap = profile.StreamRateCap(cost.result_stream_bytes_per_sec,
                                         cost.result_row_overhead, wire);
      FABRIC_RETURN_IF_ERROR(StreamToClient(self, wire, cap));
    }
    return result;
  }

  // Base table: distributed scan.
  FABRIC_ASSIGN_OR_RETURN(const TableDef* def,
                          db_->catalog().GetTable(select.from));

  // Projection-aware planning: cost every eligible physical layout of
  // the anchor and scan the cheapest (the super projection is the 1.0
  // baseline). The test hooks pin the choice when set.
  projections::QueryShape shape = projections::ShapeOf(select, def->schema);
  FABRIC_ASSIGN_OR_RETURN(projections::PlanChoice plan,
                          ResolveScanPlan(*def, shape));

  // Workload capture for the designer (v_monitor.query_requests).
  QueryRequest request;
  request.table = ToLower(def->name);
  if (shape.star) {
    for (int c = 0; c < def->schema.num_columns(); ++c) {
      request.referenced.push_back(ToLower(def->schema.column(c).name));
    }
  } else {
    request.referenced = shape.referenced;
  }
  request.group_by = shape.group_by;
  request.aggregate = shape.aggregate;
  request.pool = resource_pool_;
  db_->RecordQueryRequest(std::move(request));

  return ExecScanSelect(self, select, def, plan, to_client, spill);
}

Result<projections::PlanChoice> Session::ResolveScanPlan(
    const TableDef& def, const projections::QueryShape& shape) const {
  auto hint = forced_table_projections_.find(ToLower(def.name));
  if (hint != forced_table_projections_.end()) {
    projections::PlanChoice plan;  // defaults = the super projection
    if (hint->second.empty()) {
      plan.reason = "forced super projection (per-table hint)";
      return plan;
    }
    Result<const ProjectionDef*> forced =
        db_->catalog().GetProjection(hint->second);
    if (!forced.ok() || !EqualsIgnoreCase((*forced)->anchor, def.name) ||
        !projections::Eligible(def, **forced, shape)) {
      return FailedPreconditionError(
          StrCat(kForcedProjectionToken, ": projection '", hint->second,
                 "' cannot serve this query over table '", def.name, "'"));
    }
    projections::CostAttrs attrs;
    plan.projection = *forced;
    plan.cost = projections::CostProjection(def, *forced, shape, &attrs);
    plan.sorted_group_by = attrs.sorted_group_by;
    plan.sorted_join = attrs.sorted_join;
    plan.reason = StrCat("forced by per-table hint (", hint->second, ")");
    return plan;
  }
  if (forced_projection_.has_value()) {
    // Legacy session-wide hint: "" (or an ineligible / wrongly-anchored
    // name) silently pins the super projection.
    projections::PlanChoice plan;
    if (!forced_projection_->empty()) {
      Result<const ProjectionDef*> forced =
          db_->catalog().GetProjection(*forced_projection_);
      if (forced.ok() && (*forced)->anchor == def.name &&
          projections::Eligible(def, **forced, shape)) {
        projections::CostAttrs attrs;
        plan.projection = *forced;
        plan.cost = projections::CostProjection(def, *forced, shape, &attrs);
        plan.sorted_group_by = attrs.sorted_group_by;
        plan.sorted_join = attrs.sorted_join;
        plan.reason = "forced by session hint";
      }
    }
    return plan;
  }
  return projections::ChoosePlan(db_->catalog(), def, shape);
}

Result<QueryResult> Session::ExecScanSelect(
    sim::Process& self, const sql::SelectStmt& select, const TableDef* def,
    const projections::PlanChoice& plan, bool to_client,
    const SpillEnv* spill) {
  const CostModel& cost = db_->cost();
  const sql::UdxResolver* udx = &db_->udx_resolver();
  const sql::AggregateUdxResolver* agg_udx = &db_->aggregate_udx_resolver();
  FABRIC_ASSIGN_OR_RETURN(Database::TableStorage * table_storage,
                          db_->GetStorage(select.from));

  // Everything below scans through the chosen physical layout: its
  // schema, its segmentation, its segment stores.
  Database::SegmentSet* scan_set = table_storage;
  const auto* segmentation = &def->segmentation;
  Schema schema = def->schema;
  if (plan.projection != nullptr) {
    FABRIC_ASSIGN_OR_RETURN(
        Database::SegmentSet * proj_set,
        db_->GetProjectionStorage(plan.projection->name));
    scan_set = proj_set;
    segmentation = &plan.projection->segmentation;
    schema = plan.projection->schema;
    obs::IncrCounter(
        StrCat("vertica.projection_scans{", plan.projection->name, "}"));
    obs::TraceEvent("vertica", "projection.scan",
                    {{"projection", plan.projection->name},
                     {"table", def->name}});
  }

  Epoch snapshot;
  if (select.at_epoch >= 0) {
    if (static_cast<Epoch>(select.at_epoch) > db_->current_epoch()) {
      return OutOfRangeError(
          StrCat("epoch ", select.at_epoch, " is in the future"));
    }
    if (static_cast<Epoch>(select.at_epoch) < db_->ahm()) {
      // History at or below the Ancient History Mark may already be
      // purged (rows deleted <= AHM are physically gone), so the read
      // cannot be answered exactly.
      return OutOfRangeError(StrCat(
          "HISTORY_PURGED: epoch ", select.at_epoch,
          " predates the ancient history mark ", db_->ahm()));
    }
    snapshot = static_cast<Epoch>(select.at_epoch);
  } else {
    snapshot = db_->current_epoch();
  }
  // Pin the snapshot for the duration of the statement so the AHM (and
  // the purge behind it) cannot overtake a running scan.
  db_->PinEpoch(snapshot);
  struct EpochPin {
    Database* db;
    Epoch epoch;
    ~EpochPin() { db->UnpinEpoch(epoch); }
  } epoch_pin{db_, snapshot};

  // Columns this query touches (column-store pruning).
  std::set<int> referenced;
  bool any_star = false;
  for (const sql::SelectItem& item : select.items) {
    if (item.star) {
      any_star = true;
    } else {
      FABRIC_RETURN_IF_ERROR(CollectColumns(*item.expr, schema,
                                            &referenced));
    }
  }
  if (select.where != nullptr) {
    FABRIC_RETURN_IF_ERROR(CollectColumns(*select.where, schema,
                                          &referenced));
  }
  for (const std::string& g : select.group_by) {
    FABRIC_ASSIGN_OR_RETURN(int idx, schema.IndexOf(g));
    referenced.insert(idx);
  }
  if (any_star) {
    for (int c = 0; c < schema.num_columns(); ++c) referenced.insert(c);
  }

  bool aggregate = !select.group_by.empty();
  for (const sql::SelectItem& item : select.items) {
    if (!item.star && sql::ContainsAggregate(*item.expr, agg_udx)) {
      aggregate = true;
    }
  }

  // Participating nodes: unsegmented layouts are served locally;
  // segmented layouts are pruned by the hash ranges the predicate
  // constrains.
  std::vector<int> nodes;
  if (segmentation->unsegmented()) {
    nodes.push_back(node_);
  } else {
    sql::RingRangeSet constrained = sql::RingRangeSet::Full();
    if (select.where != nullptr) {
      std::vector<std::string> seg_names;
      for (int c : segmentation->columns) {
        seg_names.push_back(schema.column(c).name);
      }
      constrained = sql::ExtractHashRanges(*select.where, seg_names);
    }
    for (int n = 0; n < db_->num_nodes(); ++n) {
      if (constrained.Intersects(db_->node_ranges()[n])) nodes.push_back(n);
    }
  }

  // Resource-pool admission on the initiator.
  FABRIC_RETURN_IF_ERROR(db_->PoolAdmit(self, node_));
  struct PoolGuard {
    Database* db;
    int node;
    ~PoolGuard() { db->PoolRelease(node); }
  } pool_guard{db_, node_};

  // Shared state between the per-node scan processes and the streaming
  // loop below. Heap-allocated and self-contained so the scans stay valid
  // even if this process is killed mid-query.
  struct ScanState {
    Schema schema;
    // WHERE compiled for the vectorized scan: kernel-runnable terms plus
    // the interpreted residual (null when fully compiled).
    storage::ScanPredicate predicate;
    sql::ExprPtr residual;
    // The residual lowered to a vectorized program (null: interpret
    // per row). Compiled once per query on the initiator and shared by
    // every node's scan process.
    std::shared_ptr<const exec::Program> compiled_residual;
    std::vector<int> residual_columns;
    std::vector<int> cost_columns;  // WHERE columns, charged per visible row
    std::vector<int> projection;    // referenced columns, charged per match
    Epoch snapshot;
    TxnId txn;
    bool aggregate;
    // Chosen layout's sort order prefixes the GROUP BY keys: charge the
    // merge-style aggregation rate instead of the hash rate.
    bool sorted_group_by = false;
    int64_t scan_limit = -1;  // per-node row cap (LIMIT pushed into Scan)
    std::vector<int> group_cols;
    const sql::UdxResolver* udx;
    Database* db;
    int initiator;
    double chunk_bytes;
    double data_scale;
    CostModel cost;
    std::vector<std::vector<Row>> node_rows;
    std::vector<Status> node_status;
    double available_wire = 0;
    double produced_wire = 0;
    double produced_rows = 0;
    int producers_left = 0;
    std::unique_ptr<sim::Condition> progress;
  };
  auto state = std::make_shared<ScanState>();
  state->schema = schema;
  if (select.where != nullptr) {
    sql::CompiledScan compiled =
        sql::CompileScanPredicate(*select.where, schema);
    state->predicate = std::move(compiled.predicate);
    state->residual = std::move(compiled.residual);
    if (state->residual != nullptr) {
      if (db_->pipeline_compiler()->enabled()) {
        state->compiled_residual =
            db_->pipeline_compiler()->GetOrCompilePredicate(
                *state->residual, schema);
      }
      std::set<int> cols;
      FABRIC_RETURN_IF_ERROR(
          CollectColumns(*state->residual, schema, &cols));
      state->residual_columns.assign(cols.begin(), cols.end());
    }
    std::set<int> where_columns;
    FABRIC_RETURN_IF_ERROR(
        CollectColumns(*select.where, schema, &where_columns));
    state->cost_columns.assign(where_columns.begin(), where_columns.end());
  }
  state->projection.assign(referenced.begin(), referenced.end());
  state->snapshot = snapshot;
  state->txn = txn_;
  state->aggregate = aggregate;
  state->sorted_group_by = plan.sorted_group_by;
  // LIMIT n without ORDER BY or aggregation caps each node's scan at n:
  // every node's emitted rows stay a prefix of what the uncapped scan
  // emits, so the initiator's global LIMIT picks exactly the same rows
  // while the storage layer skips the containers past the cap.
  if (!aggregate && select.order_by.empty() && select.limit >= 0) {
    state->scan_limit = select.limit;
  }
  for (const std::string& g : select.group_by) {
    state->group_cols.push_back(*schema.IndexOf(g));
  }
  state->udx = udx;
  state->db = db_;
  state->initiator = node_;
  state->chunk_bytes = cost.chunk_bytes;
  state->data_scale = db_->EffectiveScale(select.from);
  state->cost = cost;
  state->node_rows.resize(db_->num_nodes());
  state->node_status.assign(db_->num_nodes(), Status::OK());
  state->producers_left = static_cast<int>(nodes.size());
  state->progress = std::make_unique<sim::Condition>(db_->engine());

  // Resolve each participating segment to its serving copy: the primary
  // when its node is UP, else the buddy (k-safety failover reroute).
  struct ScanTarget {
    int segment;
    storage::SegmentStore* store;
    int host;
  };
  std::vector<ScanTarget> targets;
  for (int n : nodes) {
    if (segmentation->unsegmented()) {
      targets.push_back(ScanTarget{n, scan_set->per_node[n].get(), n});
      continue;
    }
    FABRIC_ASSIGN_OR_RETURN(Database::SegmentCopy copy,
                            db_->ReadCopy(scan_set, n));
    if (copy.host != n) {
      obs::TraceEvent("ksafety", "scan.reroute",
                      {{"table", select.from},
                       {"segment", n},
                       {"to_node", copy.host}});
      obs::IncrCounter("ksafety.scan_reroutes");
    }
    targets.push_back(ScanTarget{n, copy.store, copy.host});
  }

  for (const ScanTarget& target : targets) {
    storage::SegmentStore* store = target.store;
    const int n = target.segment;
    const int scan_host = target.host;
    db_->engine()->Spawn(
        StrCat("vscan:", select.from, ":n", n),
        [state, store, n, scan_host](sim::Process& scan) {
          Status status = [&]() -> Status {
            Database* db = state->db;
            // Vectorized scan: predicate kernels run directly on encoded
            // columns, refining a selection vector; only passing rows are
            // materialized (late materialization). The virtual-time cost
            // accounting is unchanged from the row-at-a-time loop it
            // replaces: predicate columns are charged for every visible
            // row (this is where V2S pays its per-row HASH evaluation,
            // Section 4.7.2), output columns only for passing rows.
            storage::ScanSpec spec;
            spec.as_of = state->snapshot;
            spec.txn = state->txn;
            spec.predicate = &state->predicate;
            std::function<Result<bool>(const Row&)> residual_fn;
            if (state->residual != nullptr) {
              // SELECT keeps strict semantics: residual evaluation errors
              // fail the query, as the interpreter did.
              residual_fn = [&](const Row& row) -> Result<bool> {
                sql::EvalContext context;
                context.schema = &state->schema;
                context.row = &row;
                context.udx = state->udx;
                return sql::EvalPredicate(*state->residual, context);
              };
              spec.residual = residual_fn;
              spec.residual_columns = &state->residual_columns;
              if (state->compiled_residual != nullptr) {
                const exec::Program* program =
                    state->compiled_residual.get();
                spec.batch_residual =
                    [program](const std::vector<Row>& rows,
                              std::vector<uint32_t>* keep) {
                      exec::EvalState es;
                      std::vector<uint32_t> active;
                      std::vector<uint32_t> kept;
                      for (size_t base = 0; base < rows.size();
                           base += exec::kBlockRows) {
                        size_t len =
                            std::min(exec::kBlockRows, rows.size() - base);
                        active.resize(len);
                        for (size_t i = 0; i < len; ++i) {
                          active[i] = static_cast<uint32_t>(i);
                        }
                        kept.clear();
                        if (!exec::RunFilter(*program, rows.data() + base,
                                             len, active, &es, &kept)) {
                          return false;
                        }
                        for (uint32_t i : kept) {
                          keep->push_back(static_cast<uint32_t>(base) + i);
                        }
                      }
                      return true;
                    };
              }
            }
            spec.cost_columns = &state->cost_columns;
            spec.projection = &state->projection;
            spec.limit = state->scan_limit;
            storage::ScanStats stats;
            FABRIC_ASSIGN_OR_RETURN(std::vector<Row> passed,
                                    store->Scan(spec, &stats));
            obs::IncrCounter("vertica.rows_scanned",
                             stats.rows_visible * state->data_scale);
            DataProfile scanned = stats.visible_profile;
            DataProfile out_cost = stats.output_profile;
            out_cost.rows = 0;  // passing rows were already counted
            scanned.Add(out_cost);
            scanned.ScaleBy(state->data_scale);

            // Result volume leaving this node: for aggregates only the
            // merged partials travel (#groups x output width); otherwise
            // the referenced columns of the passing rows.
            DataProfile produced;
            if (state->aggregate) {
              std::set<std::string> group_keys;
              for (const Row& row : passed) {
                group_keys.insert(GroupKeyOf(row, state->group_cols));
              }
              produced.rows = static_cast<double>(
                  std::max<size_t>(group_keys.size(), 1));
              produced.fields = produced.rows *
                                (state->group_cols.size() + 1);
              produced.numeric_bytes = produced.fields * 8;
              produced.raw_bytes = produced.numeric_bytes;
            } else {
              produced = stats.output_profile;
              produced.ScaleBy(state->data_scale);
            }

            // Chunked pipeline: scan CPU, intra-cluster shuffle when the
            // segment is remote from the initiator, then publish to the
            // client stream.
            // Each scanned container costs a fixed open (headers, fds):
            // fragmentation hurts until the Tuple Mover merges it away.
            double scan_cpu =
                scanned.ScanCpu(state->cost) +
                static_cast<double>(stats.containers_scanned) *
                    state->cost.ros_container_open_cpu;
            if (state->aggregate) {
              // Aggregation CPU per passing input row: hash-aggregate
              // unless the layout's sort order makes equal keys adjacent.
              scan_cpu += static_cast<double>(passed.size()) *
                          state->data_scale *
                          (state->sorted_group_by
                               ? state->cost.group_by_sorted_cpu_per_row
                               : state->cost.group_by_hash_cpu_per_row);
            }
            double wire = produced.JdbcWireBytes(state->cost);
            double internal = produced.raw_bytes;
            int chunks = static_cast<int>(std::ceil(
                std::max(scanned.raw_bytes, 1.0) / state->chunk_bytes));
            chunks = std::clamp(chunks, 1, 512);
            const net::Host& host = db->node_host(scan_host);
            const net::Host& initiator = db->node_host(state->initiator);
            for (int c = 0; c < chunks; ++c) {
              FABRIC_RETURN_IF_ERROR(net::RunCpu(scan, db->network(),
                                                 host, scan_cpu / chunks));
              if (scan_host != state->initiator && internal > 0) {
                FABRIC_RETURN_IF_ERROR(db->network()->Transfer(
                    scan, {host.int_egress, initiator.int_ingress},
                    internal / chunks));
              }
              state->available_wire += wire / chunks;
              state->produced_wire += wire / chunks;
              state->produced_rows += produced.rows / chunks;
              state->progress->NotifyAll();
            }
            state->node_rows[n] = std::move(passed);
            return Status::OK();
          }();
          state->node_status[n] = status;
          --state->producers_left;
          state->progress->NotifyAll();
        });
  }

  // Stream produced chunks to the client as they appear (scan/stream
  // pipelining); internal executions (views) skip the external wire.
  while (state->producers_left > 0 || state->available_wire > 0) {
    FABRIC_RETURN_IF_ERROR(state->progress->WaitUntil(self, [&] {
      return state->available_wire > 0 || state->producers_left == 0;
    }));
    double wire = state->available_wire;
    state->available_wire = 0;
    if (wire <= 0) continue;
    if (to_client) {
      DataProfile so_far;
      so_far.rows = std::max(state->produced_rows, 1.0);
      double cap = so_far.StreamRateCap(
          cost.result_stream_bytes_per_sec, cost.result_row_overhead,
          std::max(state->produced_wire, 1.0));
      FABRIC_RETURN_IF_ERROR(StreamToClient(self, wire, cap));
      // The per-connection cap is serialization CPU on this node; credit
      // it so resource telemetry (Table 2) sees the load.
      const net::Host& host = db_->node_host(node_);
      if (host.has_cpu()) {
        db_->network()->CreditLink(
            host.cpu, wire * cost.result_serialize_cpu_per_byte *
                          net::kCpuUnitsPerCore);
      }
    }
  }
  for (int n : nodes) {
    FABRIC_RETURN_IF_ERROR(state->node_status[n]);
  }

  // Final pipeline at the initiator over the gathered rows.
  std::vector<Row> gathered;
  for (int n : nodes) {
    for (Row& row : state->node_rows[n]) {
      gathered.push_back(std::move(row));
    }
  }
  // WHERE already applied during the scan; strip it for the local pass.
  sql::SelectStmt local = [&select] {
    sql::SelectStmt copy;
    for (const sql::SelectItem& item : select.items) {
      sql::SelectItem ci;
      ci.star = item.star;
      ci.alias = item.alias;
      if (item.expr != nullptr) ci.expr = item.expr->Clone();
      copy.items.push_back(std::move(ci));
    }
    copy.group_by = select.group_by;
    copy.order_by = select.order_by;
    copy.limit = select.limit;
    return copy;
  }();
  return LocalSelect(gathered, schema, local, udx, agg_udx,
                     db_->pipeline_compiler(), spill);
}

Result<std::optional<JoinQueryPlan>> Session::PlanJoinQuery(
    const sql::SelectStmt& select) const {
  std::optional<JoinQueryPlan> none;
  if (select.from.empty() || select.join.empty() ||
      select.join_on == nullptr) {
    return none;
  }
  const std::string from = ToLower(select.from);
  const std::string join = ToLower(select.join);
  if (from == join || StartsWith(from, "v_catalog.") ||
      StartsWith(from, "v_monitor.") || StartsWith(join, "v_catalog.") ||
      StartsWith(join, "v_monitor.") ||
      db_->catalog().HasView(select.from) ||
      db_->catalog().HasView(select.join)) {
    return none;
  }
  Result<const TableDef*> left_or = db_->catalog().GetTable(select.from);
  Result<const TableDef*> right_or = db_->catalog().GetTable(select.join);
  if (!left_or.ok() || !right_or.ok()) return none;  // legacy path reports
  const TableDef* left = *left_or;
  const TableDef* right = *right_or;

  // ON must be a simple column equality resolving one column per anchor
  // (either spelling); anything else joins through the legacy
  // nested-loop path.
  const sql::Expr& on = *select.join_on;
  int lk = -1;
  int rk = -1;
  if (on.kind == sql::Expr::Kind::kBinary && on.op == "=" &&
      on.args[0]->kind == sql::Expr::Kind::kColumnRef &&
      on.args[1]->kind == sql::Expr::Kind::kColumnRef) {
    auto l = left->schema.IndexOf(on.args[0]->column);
    auto r = right->schema.IndexOf(on.args[1]->column);
    if (!l.ok() || !r.ok()) {
      l = left->schema.IndexOf(on.args[1]->column);
      r = right->schema.IndexOf(on.args[0]->column);
    }
    if (l.ok() && r.ok()) {
      lk = *l;
      rk = *r;
    }
  }
  if (lk < 0 || rk < 0) return none;

  JoinQueryPlan jq;
  jq.left_table = left;
  jq.right_table = right;
  jq.left_key = lk;
  jq.right_key = rk;

  // Column pruning: resolve every outer reference against the combined
  // exposed schema (left anchor columns, then right anchor columns with
  // collisions renamed <join>_<name>), then map each back to its side.
  // Renames compare against the full left anchor schema — not the pruned
  // subset — so the exposed names never depend on the projection choice.
  const int left_n = left->schema.num_columns();
  std::vector<storage::ColumnDef> combined_columns = left->schema.columns();
  for (const storage::ColumnDef& column : right->schema.columns()) {
    storage::ColumnDef renamed = column;
    if (left->schema.Contains(column.name)) {
      renamed.name = StrCat(select.join, "_", column.name);
    }
    combined_columns.push_back(renamed);
  }
  Schema combined(std::move(combined_columns));
  std::set<int> refs;
  bool star = false;
  for (const sql::SelectItem& item : select.items) {
    if (item.star) {
      star = true;
      continue;
    }
    if (!CollectColumns(*item.expr, combined, &refs).ok()) return none;
  }
  if (select.where != nullptr &&
      !CollectColumns(*select.where, combined, &refs).ok()) {
    return none;
  }
  for (const std::string& g : select.group_by) {
    auto idx = combined.IndexOf(g);
    if (!idx.ok()) return none;
    refs.insert(*idx);
  }
  for (const sql::OrderItem& item : select.order_by) {
    auto idx = combined.IndexOf(item.column);
    if (!idx.ok()) return none;
    refs.insert(*idx);
  }
  if (star) {
    for (int c = 0; c < combined.num_columns(); ++c) refs.insert(c);
  }
  refs.insert(lk);
  refs.insert(left_n + rk);
  for (int c : refs) {
    if (c < left_n) {
      jq.left_needed.push_back(c);
    } else {
      jq.right_needed.push_back(c - left_n);
    }
  }

  // Per-side shapes carry explicit column lists (never star) so narrow
  // sorted projections stay eligible for wide tables.
  auto side_shape = [&select](const TableDef& t,
                              const std::vector<int>& needed, int key) {
    projections::QueryShape shape;
    for (int c : needed) {
      shape.referenced.push_back(ToLower(t.schema.column(c).name));
    }
    shape.join_keys.push_back(ToLower(t.schema.column(key).name));
    shape.at_epoch = select.at_epoch;
    return shape;
  };
  projections::QueryShape left_shape = side_shape(*left, jq.left_needed, lk);
  projections::QueryShape right_shape =
      side_shape(*right, jq.right_needed, rk);

  // Per side: the cheapest plan overall plus the cheapest merge-capable
  // plan (sorted on the join key). When both sides have a merge-capable
  // layout the merge join wins outright — its per-row rate is far below
  // the hash rate, so a slightly wider sorted projection still beats the
  // narrowest unsorted one. A forced hint pins the side to one layout.
  struct SidePlan {
    projections::PlanChoice overall;
    std::optional<projections::PlanChoice> sorted;
  };
  auto plan_side = [this](const TableDef& t,
                          const projections::QueryShape& shape,
                          std::vector<std::pair<std::string, double>>* cands)
      -> Result<SidePlan> {
    SidePlan side;
    side.overall = projections::ChoosePlan(db_->catalog(), t, shape, cands);
    const bool forced =
        forced_table_projections_.count(ToLower(t.name)) > 0 ||
        forced_projection_.has_value();
    if (forced) {
      FABRIC_ASSIGN_OR_RETURN(side.overall, ResolveScanPlan(t, shape));
      if (side.overall.sorted_join) side.sorted = side.overall;
      return side;
    }
    side.sorted = projections::ChooseSortedJoinPlan(db_->catalog(), t, shape);
    return side;
  };
  FABRIC_ASSIGN_OR_RETURN(SidePlan left_side,
                          plan_side(*left, left_shape, &jq.left_candidates));
  FABRIC_ASSIGN_OR_RETURN(
      SidePlan right_side,
      plan_side(*right, right_shape, &jq.right_candidates));

  bool want_merge =
      left_side.sorted.has_value() && right_side.sorted.has_value();
  if (forced_join_strategy_.has_value()) {
    if (*forced_join_strategy_ == "hash") {
      want_merge = false;
    } else if (*forced_join_strategy_ == "merge") {
      if (!want_merge) {
        return FailedPreconditionError(StrCat(
            kForcedJoinStrategyToken, ": no merge-capable projection pair for ",
            select.from, " JOIN ", select.join,
            " (both sides must scan a layout sorted on the join key)"));
      }
    } else {
      return InvalidArgumentError(StrCat("unknown forced join strategy '",
                                         *forced_join_strategy_, "'"));
    }
  }
  const projections::PlanChoice& lpick =
      want_merge ? *left_side.sorted : left_side.overall;
  const projections::PlanChoice& rpick =
      want_merge ? *right_side.sorted : right_side.overall;
  jq.plan = projections::ClassifyJoin(*left, lpick,
                                      left_shape.join_keys.front(), *right,
                                      rpick, right_shape.join_keys.front());
  if (!want_merge) {
    jq.plan.merge = false;
    jq.plan.co_located = false;
  }
  return std::optional<JoinQueryPlan>(std::move(jq));
}

Result<QueryResult> Session::ExecJoin(sim::Process& self,
                                      const sql::SelectStmt& select,
                                      bool to_client, int view_depth,
                                      const SpillEnv* spill) {
  const CostModel& cost = db_->cost();
  const sql::UdxResolver* udx = &db_->udx_resolver();
  const sql::AggregateUdxResolver* agg_udx = &db_->aggregate_udx_resolver();

  FABRIC_ASSIGN_OR_RETURN(std::optional<JoinQueryPlan> planned,
                          PlanJoinQuery(select));
  if (!planned.has_value()) {
    // Legacy path (views, system tables, complex ON): execute both sides
    // as internal distributed scans, join at the initiator (hash join on
    // simple column equality, nested-loop otherwise), then run the outer
    // pipeline over the combined rows. Views over joins are what let V2S
    // push join processing into Vertica (Section 3.1.1).
    auto scan_side = [&](const std::string& table) -> Result<QueryResult> {
      sql::SelectStmt sub;
      sql::SelectItem star;
      star.star = true;
      sub.items.push_back(std::move(star));
      sub.from = table;
      sub.at_epoch = select.at_epoch;
      return ExecSelect(self, sub, /*to_client=*/false, view_depth + 1);
    };
    FABRIC_ASSIGN_OR_RETURN(QueryResult left, scan_side(select.from));
    FABRIC_ASSIGN_OR_RETURN(QueryResult right, scan_side(select.join));

    // Combined schema: left columns, then right columns; a right column
    // whose name collides is exposed as <join>_<name>.
    std::vector<storage::ColumnDef> combined_columns =
        left.schema.columns();
    for (const storage::ColumnDef& column : right.schema.columns()) {
      storage::ColumnDef renamed = column;
      if (left.schema.Contains(column.name)) {
        renamed.name = StrCat(select.join, "_", column.name);
      }
      combined_columns.push_back(renamed);
    }
    Schema combined(std::move(combined_columns));

    // Join CPU on the initiator: hash-join-shaped cost.
    obs::IncrCounter("vertica.hash_joins");
    DataProfile join_cost;
    join_cost.rows = static_cast<double>(left.rows.size()) +
                     static_cast<double>(right.rows.size());
    join_cost.ScaleBy(cost.data_scale);
    FABRIC_RETURN_IF_ERROR(
        net::RunCpu(self, db_->network(), db_->node_host(node_),
                    join_cost.rows * cost.join_hash_cpu_per_row));

    // Hash join when ON is `leftcol = rightcol`; nested loop otherwise.
    std::vector<Row> joined;
    const sql::Expr& on = *select.join_on;
    int left_key = -1, right_key = -1;
    if (on.kind == sql::Expr::Kind::kBinary && on.op == "=" &&
        on.args[0]->kind == sql::Expr::Kind::kColumnRef &&
        on.args[1]->kind == sql::Expr::Kind::kColumnRef) {
      auto l = left.schema.IndexOf(on.args[0]->column);
      auto r = right.schema.IndexOf(on.args[1]->column);
      if (!l.ok() || !r.ok()) {
        // Reversed spelling: right.col = left.col.
        l = left.schema.IndexOf(on.args[1]->column);
        r = right.schema.IndexOf(on.args[0]->column);
      }
      if (l.ok() && r.ok()) {
        left_key = *l;
        right_key = *r;
      }
    }
    if (left_key >= 0) {
      std::multimap<std::string, const Row*> build;
      for (const Row& row : right.rows) {
        if (row[right_key].is_null()) continue;  // NULL never joins
        build.emplace(row[right_key].ToDisplayString(), &row);
      }
      for (const Row& lrow : left.rows) {
        if (lrow[left_key].is_null()) continue;
        auto [begin, end] =
            build.equal_range(lrow[left_key].ToDisplayString());
        for (auto it = begin; it != end; ++it) {
          Row out = lrow;
          out.insert(out.end(), it->second->begin(), it->second->end());
          joined.push_back(std::move(out));
        }
      }
    } else {
      for (const Row& lrow : left.rows) {
        for (const Row& rrow : right.rows) {
          Row out = lrow;
          out.insert(out.end(), rrow.begin(), rrow.end());
          sql::EvalContext context;
          context.schema = &combined;
          context.row = &out;
          context.udx = udx;
          FABRIC_ASSIGN_OR_RETURN(bool match,
                                  sql::EvalPredicate(on, context));
          if (match) joined.push_back(std::move(out));
        }
      }
    }

    FABRIC_ASSIGN_OR_RETURN(QueryResult result,
                            LocalSelect(joined, combined, select, udx,
                                        agg_udx, db_->pipeline_compiler(),
                                        spill));
    if (to_client) {
      DataProfile profile = ProfileRows(result.rows);
      profile.ScaleBy(cost.data_scale);
      double wire = profile.JdbcWireBytes(cost);
      double cap = profile.StreamRateCap(cost.result_stream_bytes_per_sec,
                                         cost.result_row_overhead, wire);
      FABRIC_RETURN_IF_ERROR(StreamToClient(self, wire, cap));
    }
    return result;
  }

  // Planned path: both sides are base tables scanning a chosen layout.
  const JoinQueryPlan& jq = *planned;
  const TableDef& left_t = *jq.left_table;
  const TableDef& right_t = *jq.right_table;
  const char* strategy = jq.plan.strategy();

  // Workload capture for the designer: one request per side, so the
  // designer sees which tables want join-key-sorted layouts.
  auto record_side = [&](const TableDef& t, const std::vector<int>& needed,
                         int key, const TableDef& other) {
    QueryRequest request;
    request.table = ToLower(t.name);
    request.join_table = ToLower(other.name);
    for (int c : needed) {
      request.referenced.push_back(ToLower(t.schema.column(c).name));
    }
    request.join_keys.push_back(ToLower(t.schema.column(key).name));
    for (const std::string& g : select.group_by) {
      if (t.schema.Contains(g)) request.group_by.push_back(ToLower(g));
    }
    request.aggregate = !select.group_by.empty();
    request.pool = resource_pool_;
    request.strategy = strategy;
    db_->RecordQueryRequest(std::move(request));
  };
  record_side(left_t, jq.left_needed, jq.left_key, right_t);
  record_side(right_t, jq.right_needed, jq.right_key, left_t);

  obs::IncrCounter(jq.plan.merge ? "vertica.merge_joins"
                                 : "vertica.hash_joins");
  obs::TraceEvent(
      "vertica", "join.plan",
      {{"strategy", strategy},
       {"left", jq.plan.left.projection != nullptr
                    ? jq.plan.left.projection->name
                    : "super"},
       {"right", jq.plan.right.projection != nullptr
                     ? jq.plan.right.projection->name
                     : "super"},
       {"co_located", jq.plan.co_located ? 1 : 0}});

  // Combined schema over the pruned column sets, in anchor order per
  // side; the rename rule matches the legacy path (collisions against
  // the full left anchor schema), so a query sees the same column names
  // whichever strategy or projection pair serves it.
  std::vector<storage::ColumnDef> combined_columns;
  for (int c : jq.left_needed) {
    combined_columns.push_back(left_t.schema.column(c));
  }
  for (int c : jq.right_needed) {
    storage::ColumnDef renamed = right_t.schema.column(c);
    if (left_t.schema.Contains(renamed.name)) {
      renamed.name = StrCat(select.join, "_", renamed.name);
    }
    combined_columns.push_back(renamed);
  }
  Schema combined(std::move(combined_columns));

  std::vector<Row> joined;
  if (jq.plan.co_located) {
    FABRIC_ASSIGN_OR_RETURN(joined, ExecCoLocatedJoin(self, select, jq));
  } else {
    // Gathered join: scan each side through its chosen layout (pruned to
    // the needed columns), then join at the initiator.
    auto scan_side = [&](const TableDef& t, const std::vector<int>& needed,
                         const projections::PlanChoice& pick)
        -> Result<QueryResult> {
      sql::SelectStmt sub;
      for (int c : needed) {
        sql::SelectItem item;
        item.expr = sql::Expr::ColumnRef(t.schema.column(c).name);
        sub.items.push_back(std::move(item));
      }
      sub.from = t.name;
      sub.at_epoch = select.at_epoch;
      return ExecScanSelect(self, sub, &t, pick, /*to_client=*/false,
                            nullptr);
    };
    FABRIC_ASSIGN_OR_RETURN(QueryResult left,
                            scan_side(left_t, jq.left_needed, jq.plan.left));
    FABRIC_ASSIGN_OR_RETURN(
        QueryResult right,
        scan_side(right_t, jq.right_needed, jq.plan.right));

    // Join-key positions within the pruned rows.
    const int lpos = static_cast<int>(
        std::find(jq.left_needed.begin(), jq.left_needed.end(),
                  jq.left_key) -
        jq.left_needed.begin());
    const int rpos = static_cast<int>(
        std::find(jq.right_needed.begin(), jq.right_needed.end(),
                  jq.right_key) -
        jq.right_needed.begin());

    // Join CPU on the initiator: the merge rate skips the hash table
    // build/probe because both inputs already arrive sorted on the key.
    DataProfile join_cost;
    join_cost.rows = static_cast<double>(left.rows.size()) +
                     static_cast<double>(right.rows.size());
    join_cost.ScaleBy(cost.data_scale);
    FABRIC_RETURN_IF_ERROR(net::RunCpu(
        self, db_->network(), db_->node_host(node_),
        join_cost.rows * (jq.plan.merge ? cost.join_merge_cpu_per_row
                                        : cost.join_hash_cpu_per_row)));

    if (jq.plan.merge) {
      // Merge join: a stable sorted index over the right side replaces
      // the hash table. Keys compare by display string — the same
      // equality the hash path uses — and equal right keys keep their
      // arrival order, so the output is byte-identical to the hash
      // join's.
      std::vector<std::pair<std::string, size_t>> index;
      index.reserve(right.rows.size());
      for (size_t i = 0; i < right.rows.size(); ++i) {
        if (right.rows[i][rpos].is_null()) continue;  // NULL never joins
        index.emplace_back(right.rows[i][rpos].ToDisplayString(), i);
      }
      std::stable_sort(index.begin(), index.end(),
                       [](const auto& a, const auto& b) {
                         return a.first < b.first;
                       });
      for (const Row& lrow : left.rows) {
        if (lrow[lpos].is_null()) continue;
        const std::string key = lrow[lpos].ToDisplayString();
        auto it = std::lower_bound(
            index.begin(), index.end(), key,
            [](const auto& entry, const std::string& k) {
              return entry.first < k;
            });
        for (; it != index.end() && it->first == key; ++it) {
          Row out = lrow;
          const Row& rrow = right.rows[it->second];
          out.insert(out.end(), rrow.begin(), rrow.end());
          joined.push_back(std::move(out));
        }
      }
    } else {
      std::multimap<std::string, const Row*> build;
      for (const Row& row : right.rows) {
        if (row[rpos].is_null()) continue;  // NULL never joins
        build.emplace(row[rpos].ToDisplayString(), &row);
      }
      for (const Row& lrow : left.rows) {
        if (lrow[lpos].is_null()) continue;
        auto [begin, end] =
            build.equal_range(lrow[lpos].ToDisplayString());
        for (auto it = begin; it != end; ++it) {
          Row out = lrow;
          out.insert(out.end(), it->second->begin(), it->second->end());
          joined.push_back(std::move(out));
        }
      }
    }
  }

  FABRIC_ASSIGN_OR_RETURN(QueryResult result,
                          LocalSelect(joined, combined, select, udx,
                                      agg_udx, db_->pipeline_compiler(),
                                      spill));
  if (to_client) {
    DataProfile profile = ProfileRows(result.rows);
    profile.ScaleBy(cost.data_scale);
    double wire = profile.JdbcWireBytes(cost);
    double cap = profile.StreamRateCap(cost.result_stream_bytes_per_sec,
                                       cost.result_row_overhead, wire);
    FABRIC_RETURN_IF_ERROR(StreamToClient(self, wire, cap));
  }
  return result;
}

Result<std::vector<storage::Row>> Session::ExecCoLocatedJoin(
    sim::Process& self, const sql::SelectStmt& select,
    const JoinQueryPlan& jq) {
  const CostModel& cost = db_->cost();
  const TableDef& left_t = *jq.left_table;
  const TableDef& right_t = *jq.right_table;

  // Epoch snapshot: same rules as the single-table scan.
  Epoch snapshot;
  if (select.at_epoch >= 0) {
    if (static_cast<Epoch>(select.at_epoch) > db_->current_epoch()) {
      return OutOfRangeError(
          StrCat("epoch ", select.at_epoch, " is in the future"));
    }
    if (static_cast<Epoch>(select.at_epoch) < db_->ahm()) {
      return OutOfRangeError(StrCat(
          "HISTORY_PURGED: epoch ", select.at_epoch,
          " predates the ancient history mark ", db_->ahm()));
    }
    snapshot = static_cast<Epoch>(select.at_epoch);
  } else {
    snapshot = db_->current_epoch();
  }
  db_->PinEpoch(snapshot);
  struct EpochPin {
    Database* db;
    Epoch epoch;
    ~EpochPin() { db->UnpinEpoch(epoch); }
  } epoch_pin{db_, snapshot};

  FABRIC_RETURN_IF_ERROR(db_->PoolAdmit(self, node_));
  struct PoolGuard {
    Database* db;
    int node;
    ~PoolGuard() { db->PoolRelease(node); }
  } pool_guard{db_, node_};

  // Storage sets for the chosen layouts.
  auto side_set = [this](const TableDef& t,
                         const projections::PlanChoice& pick)
      -> Result<Database::SegmentSet*> {
    if (pick.projection != nullptr) {
      return db_->GetProjectionStorage(pick.projection->name);
    }
    FABRIC_ASSIGN_OR_RETURN(Database::TableStorage * table_storage,
                            db_->GetStorage(t.name));
    return static_cast<Database::SegmentSet*>(table_storage);
  };
  FABRIC_ASSIGN_OR_RETURN(Database::SegmentSet * left_set,
                          side_set(left_t, jq.plan.left));
  FABRIC_ASSIGN_OR_RETURN(Database::SegmentSet * right_set,
                          side_set(right_t, jq.plan.right));
  for (const projections::PlanChoice* pick :
       {&jq.plan.left, &jq.plan.right}) {
    if (pick->projection != nullptr) {
      obs::IncrCounter(
          StrCat("vertica.projection_scans{", pick->projection->name, "}"));
      obs::TraceEvent("vertica", "projection.scan",
                      {{"projection", pick->projection->name},
                       {"table", pick->projection->anchor}});
    }
  }

  // Map each needed anchor column (and the join key) to its position in
  // the scanned layout's store schema; rows are emitted in anchor order
  // so the combined layout matches the gathered path's exactly.
  auto side_positions = [](const projections::PlanChoice& pick,
                           const std::vector<int>& needed, int key,
                           std::vector<int>* positions,
                           int* key_position) -> Status {
    auto to_store = [&pick](int anchor_col) -> int {
      const ProjectionDef* proj = pick.projection;
      if (proj == nullptr) return anchor_col;
      for (size_t i = 0; i < proj->columns.size(); ++i) {
        if (proj->columns[i] == anchor_col) return static_cast<int>(i);
      }
      return -1;
    };
    for (int c : needed) {
      int p = to_store(c);
      if (p < 0) return InternalError("projection missing a needed column");
      positions->push_back(p);
    }
    *key_position = to_store(key);
    if (*key_position < 0) {
      return InternalError("projection missing the join key");
    }
    return Status::OK();
  };
  std::vector<int> left_positions, right_positions;
  int left_key_position = -1, right_key_position = -1;
  FABRIC_RETURN_IF_ERROR(side_positions(jq.plan.left, jq.left_needed,
                                        jq.left_key, &left_positions,
                                        &left_key_position));
  FABRIC_RETURN_IF_ERROR(side_positions(jq.plan.right, jq.right_needed,
                                        jq.right_key, &right_positions,
                                        &right_key_position));

  const Segmentation& left_seg = jq.plan.left.projection != nullptr
                                     ? jq.plan.left.projection->segmentation
                                     : left_t.segmentation;
  const bool right_replicated =
      (jq.plan.right.projection != nullptr
           ? jq.plan.right.projection->segmentation
           : right_t.segmentation)
          .unsegmented();

  // One join process per left segment, on whichever node serves that
  // segment today (primary, or buddy after failover). A replicated right
  // side is read from the serving node's local copy; a segmented right
  // side reads the matching segment (equal keys land on equal segment
  // indices — that is what ClassifyJoin certified).
  struct JoinTarget {
    int segment;
    storage::SegmentStore* left_store;
    storage::SegmentStore* right_store;
    int host;        // node whose CPU runs the join
    int right_host;  // node serving the right store (differs only in
                     // asymmetric failover states)
  };
  std::vector<JoinTarget> targets;
  if (left_seg.unsegmented()) {
    targets.push_back(JoinTarget{node_, left_set->per_node[node_].get(),
                                 right_set->per_node[node_].get(), node_,
                                 node_});
  } else {
    for (int n = 0; n < db_->num_nodes(); ++n) {
      FABRIC_ASSIGN_OR_RETURN(Database::SegmentCopy left_copy,
                              db_->ReadCopy(left_set, n));
      storage::SegmentStore* right_store = nullptr;
      int right_host = left_copy.host;
      if (right_replicated) {
        right_store = right_set->per_node[left_copy.host].get();
      } else {
        FABRIC_ASSIGN_OR_RETURN(Database::SegmentCopy right_copy,
                                db_->ReadCopy(right_set, n));
        right_store = right_copy.store;
        right_host = right_copy.host;
      }
      if (left_copy.host != n) {
        obs::TraceEvent("ksafety", "scan.reroute",
                        {{"table", left_t.name},
                         {"segment", n},
                         {"to_node", left_copy.host}});
        obs::IncrCounter("ksafety.scan_reroutes");
      }
      targets.push_back(JoinTarget{n, left_copy.store, right_store,
                                   left_copy.host, right_host});
    }
  }

  // Shared state between the per-segment join processes and the gather
  // below; heap-allocated so the joins stay valid if this process is
  // killed mid-query.
  struct JoinState {
    Database* db;
    CostModel cost;
    Epoch snapshot;
    TxnId txn;
    std::vector<int> left_positions, right_positions;
    int left_key_position, right_key_position;
    double left_scale, right_scale;
    int initiator;
    std::vector<std::vector<Row>> node_rows;
    std::vector<Status> node_status;
    int producers_left = 0;
    std::unique_ptr<sim::Condition> progress;
  };
  auto state = std::make_shared<JoinState>();
  state->db = db_;
  state->cost = cost;
  state->snapshot = snapshot;
  state->txn = txn_;
  state->left_positions = left_positions;
  state->right_positions = right_positions;
  state->left_key_position = left_key_position;
  state->right_key_position = right_key_position;
  state->left_scale = db_->EffectiveScale(left_t.name);
  state->right_scale = db_->EffectiveScale(right_t.name);
  state->initiator = node_;
  state->node_rows.resize(db_->num_nodes());
  state->node_status.assign(db_->num_nodes(), Status::OK());
  state->producers_left = static_cast<int>(targets.size());
  state->progress = std::make_unique<sim::Condition>(db_->engine());

  for (const JoinTarget& target : targets) {
    db_->engine()->Spawn(
        StrCat("vjoin:", left_t.name, "x", right_t.name, ":n",
               target.segment),
        [state, target](sim::Process& proc) {
          Status status = [&]() -> Status {
            Database* db = state->db;
            auto scan = [&](storage::SegmentStore* store,
                            const std::vector<int>& cost_columns,
                            storage::ScanStats* stats)
                -> Result<std::vector<Row>> {
              storage::ScanSpec spec;
              spec.as_of = state->snapshot;
              spec.txn = state->txn;
              spec.projection = &cost_columns;
              return store->Scan(spec, stats);
            };
            storage::ScanStats left_stats, right_stats;
            FABRIC_ASSIGN_OR_RETURN(
                std::vector<Row> left_rows,
                scan(target.left_store, state->left_positions, &left_stats));
            FABRIC_ASSIGN_OR_RETURN(std::vector<Row> right_rows,
                                    scan(target.right_store,
                                         state->right_positions,
                                         &right_stats));
            obs::IncrCounter(
                "vertica.rows_scanned",
                left_stats.rows_visible * state->left_scale +
                    right_stats.rows_visible * state->right_scale);

            // Node-local merge join, emitting combined rows pruned to the
            // needed columns in anchor order (see ExecJoin): left rows in
            // storage order, matches in right storage order — the same
            // order the gathered hash join produces for this segment.
            std::vector<std::pair<std::string, size_t>> index;
            index.reserve(right_rows.size());
            for (size_t i = 0; i < right_rows.size(); ++i) {
              const Value& key = right_rows[i][state->right_key_position];
              if (key.is_null()) continue;  // NULL never joins
              index.emplace_back(key.ToDisplayString(), i);
            }
            std::stable_sort(index.begin(), index.end(),
                             [](const auto& a, const auto& b) {
                               return a.first < b.first;
                             });
            std::vector<Row> out;
            for (const Row& lrow : left_rows) {
              const Value& key_value = lrow[state->left_key_position];
              if (key_value.is_null()) continue;
              const std::string key = key_value.ToDisplayString();
              auto it = std::lower_bound(
                  index.begin(), index.end(), key,
                  [](const auto& entry, const std::string& k) {
                    return entry.first < k;
                  });
              for (; it != index.end() && it->first == key; ++it) {
                const Row& rrow = right_rows[it->second];
                Row row;
                row.reserve(state->left_positions.size() +
                            state->right_positions.size());
                for (int p : state->left_positions) row.push_back(lrow[p]);
                for (int p : state->right_positions) row.push_back(rrow[p]);
                out.push_back(std::move(row));
              }
            }

            // Virtual-time cost: both scans' bytes and container opens
            // plus the merge-join CPU per input row, all on the serving
            // node. Only the join output travels to the initiator.
            auto scanned_of = [](const storage::ScanStats& stats,
                                 double scale) {
              DataProfile scanned = stats.visible_profile;
              DataProfile out_cost = stats.output_profile;
              out_cost.rows = 0;  // passing rows were already counted
              scanned.Add(out_cost);
              scanned.ScaleBy(scale);
              return scanned;
            };
            DataProfile scanned = scanned_of(left_stats, state->left_scale);
            scanned.Add(scanned_of(right_stats, state->right_scale));
            double cpu =
                scanned.ScanCpu(state->cost) +
                static_cast<double>(left_stats.containers_scanned +
                                    right_stats.containers_scanned) *
                    state->cost.ros_container_open_cpu +
                (static_cast<double>(left_rows.size()) * state->left_scale +
                 static_cast<double>(right_rows.size()) *
                     state->right_scale) *
                    state->cost.join_merge_cpu_per_row;
            const net::Host& host = db->node_host(target.host);
            FABRIC_RETURN_IF_ERROR(
                net::RunCpu(proc, db->network(), host, cpu));
            if (target.right_host != target.host) {
              // Asymmetric failover: the right segment is served from a
              // different node, so its scan output crosses the cluster.
              DataProfile moved = right_stats.output_profile;
              moved.ScaleBy(state->right_scale);
              if (moved.raw_bytes > 0) {
                const net::Host& rhost = db->node_host(target.right_host);
                FABRIC_RETURN_IF_ERROR(db->network()->Transfer(
                    proc, {rhost.int_egress, host.int_ingress},
                    moved.raw_bytes));
              }
            }
            if (target.host != state->initiator) {
              DataProfile produced = ProfileRows(out);
              produced.ScaleBy(state->cost.data_scale);
              if (produced.raw_bytes > 0) {
                const net::Host& initiator =
                    db->node_host(state->initiator);
                FABRIC_RETURN_IF_ERROR(db->network()->Transfer(
                    proc, {host.int_egress, initiator.int_ingress},
                    produced.raw_bytes));
              }
            }
            state->node_rows[target.segment] = std::move(out);
            return Status::OK();
          }();
          state->node_status[target.segment] = status;
          --state->producers_left;
          state->progress->NotifyAll();
        });
  }

  FABRIC_RETURN_IF_ERROR(state->progress->WaitUntil(
      self, [&] { return state->producers_left == 0; }));
  for (const JoinTarget& target : targets) {
    FABRIC_RETURN_IF_ERROR(state->node_status[target.segment]);
  }
  std::vector<Row> joined;
  for (const JoinTarget& target : targets) {
    for (Row& row : state->node_rows[target.segment]) {
      joined.push_back(std::move(row));
    }
  }
  return joined;
}

Status Session::StreamToClient(sim::Process& self, double wire_bytes,
                               double rate_cap) {
  if (client_ == nullptr || wire_bytes <= 0) return self.CheckAlive();
  obs::IncrCounter("vertica.result_wire_bytes", wire_bytes);
  return db_->network()->Transfer(
      self,
      {db_->node_host(node_).ext_egress, client_->ext_ingress},
      wire_bytes, rate_cap);
}

Status Session::StreamToClientReverse(sim::Process& self,
                                      double wire_bytes) {
  if (client_ == nullptr || wire_bytes <= 0) return self.CheckAlive();
  obs::IncrCounter("vertica.load_wire_bytes", wire_bytes);
  return db_->network()->Transfer(
      self,
      {client_->ext_egress, db_->node_host(node_).ext_ingress},
      wire_bytes);
}

}  // namespace fabric::vertica
