#ifndef FABRIC_VERTICA_SQL_LEXER_H_
#define FABRIC_VERTICA_SQL_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace fabric::vertica::sql {

struct Token {
  enum class Kind {
    kKeywordOrIdent,  // bare word; text upper-cased in `upper`
    kNumber,          // integer or decimal literal text
    kString,          // contents with '' unescaped
    kOperator,        // = <> != < <= > >= + - * / % || ( ) , .
    kEnd,
  };

  Kind kind;
  std::string text;   // original spelling (identifier case preserved)
  std::string upper;  // upper-cased (keyword matching)
  int position = 0;   // offset in the input, for error messages

  bool Is(std::string_view keyword_or_op) const;
};

// Tokenizes one SQL statement. Comments (-- and /* */) are skipped except
// that the /*+ DIRECT */ hint is surfaced as a keyword token "DIRECT_HINT".
Result<std::vector<Token>> Lex(std::string_view sql);

}  // namespace fabric::vertica::sql

#endif  // FABRIC_VERTICA_SQL_LEXER_H_
