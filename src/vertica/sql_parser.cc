#include "vertica/sql_parser.h"

#include <utility>

#include "common/string_util.h"
#include "vertica/sql_lexer.h"

namespace fabric::vertica::sql {
namespace {

using storage::DataType;
using storage::Value;

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Statement> ParseStatement() {
    const Token& t = Peek();
    Result<Statement> result = [&]() -> Result<Statement> {
      if (t.Is("SELECT")) return WrapSelect();
      if (t.Is("EXPLAIN")) return ParseExplain();
      if (t.Is("CREATE")) return ParseCreate();
      if (t.Is("DROP")) return ParseDrop();
      if (t.Is("ALTER")) return ParseAlter();
      if (t.Is("TRUNCATE")) return ParseTruncate();
      if (t.Is("INSERT") || t.Is("DIRECT_HINT")) return ParseInsert();
      if (t.Is("UPDATE")) return ParseUpdate();
      if (t.Is("DELETE")) return ParseDelete();
      if (t.Is("BEGIN")) return ParseTxn(TxnStmt::Kind::kBegin);
      if (t.Is("COMMIT")) return ParseTxn(TxnStmt::Kind::kCommit);
      if (t.Is("ROLLBACK")) return ParseTxn(TxnStmt::Kind::kRollback);
      return Error("expected a statement keyword");
    }();
    if (!result.ok()) return result;
    FABRIC_RETURN_IF_ERROR(ExpectEnd());
    return result;
  }

  Result<ExprPtr> ParseStandaloneExpression() {
    FABRIC_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
    FABRIC_RETURN_IF_ERROR(ExpectEnd());
    return std::move(e);
  }

 private:
  // ------------------------------------------------------------ plumbing
  const Token& Peek(int ahead = 0) const {
    size_t i = pos_ + ahead;
    if (i >= tokens_.size()) i = tokens_.size() - 1;
    return tokens_[i];
  }
  const Token& Next() {
    const Token& t = Peek();
    if (pos_ + 1 < tokens_.size()) ++pos_;
    return t;
  }
  bool Accept(std::string_view word) {
    if (Peek().Is(word)) {
      Next();
      return true;
    }
    return false;
  }
  Status Expect(std::string_view word) {
    if (!Accept(word)) {
      return InvalidArgumentError(StrCat("expected '", word, "' near '",
                                         Peek().text, "' at ",
                                         Peek().position));
    }
    return Status::OK();
  }
  Status ExpectEnd() {
    if (Peek().kind != Token::Kind::kEnd) {
      return InvalidArgumentError(
          StrCat("unexpected trailing input '", Peek().text, "' at ",
                 Peek().position));
    }
    return Status::OK();
  }
  Status Error(std::string_view message) const {
    return InvalidArgumentError(StrCat(message, " near '", Peek().text,
                                       "' at ", Peek().position));
  }

  Result<std::string> Identifier() {
    if (Peek().kind != Token::Kind::kKeywordOrIdent) {
      return Error("expected identifier");
    }
    std::string name = Next().text;
    // Qualified name (schema.table, e.g. v_catalog.nodes).
    while (Peek().Is(".")) {
      Next();
      if (Peek().kind != Token::Kind::kKeywordOrIdent) {
        return Error("expected identifier after '.'");
      }
      name += ".";
      name += Next().text;
    }
    return name;
  }

  Result<int64_t> IntegerLiteral() {
    bool negative = false;
    if (Peek().Is("-")) {
      Next();
      negative = true;
    }
    if (Peek().kind != Token::Kind::kNumber) {
      return Error("expected integer");
    }
    int64_t v = 0;
    if (!ParseInt64(Next().text, &v)) return Error("bad integer");
    return negative ? -v : v;
  }

  // ---------------------------------------------------------- statements

  Result<Statement> WrapSelect() {
    FABRIC_ASSIGN_OR_RETURN(SelectStmt s, ParseSelect());
    return Statement(std::move(s));
  }

  Result<SelectStmt> ParseSelect() {
    FABRIC_RETURN_IF_ERROR(Expect("SELECT"));
    SelectStmt select;
    while (true) {
      SelectItem item;
      if (Peek().Is("*")) {
        Next();
        item.star = true;
      } else {
        FABRIC_ASSIGN_OR_RETURN(item.expr, ParseExpr());
        if (Accept("AS")) {
          FABRIC_ASSIGN_OR_RETURN(item.alias, Identifier());
        } else if (Peek().kind == Token::Kind::kKeywordOrIdent &&
                   !IsReservedWord(Peek().upper)) {
          item.alias = Next().text;
        }
      }
      select.items.push_back(std::move(item));
      if (!Accept(",")) break;
    }
    if (Accept("FROM")) {
      FABRIC_ASSIGN_OR_RETURN(select.from, Identifier());
      if (Accept("INNER")) {
        FABRIC_RETURN_IF_ERROR(Expect("JOIN"));
        FABRIC_ASSIGN_OR_RETURN(select.join, Identifier());
        FABRIC_RETURN_IF_ERROR(Expect("ON"));
        FABRIC_ASSIGN_OR_RETURN(select.join_on, ParseExpr());
      } else if (Accept("JOIN")) {
        FABRIC_ASSIGN_OR_RETURN(select.join, Identifier());
        FABRIC_RETURN_IF_ERROR(Expect("ON"));
        FABRIC_ASSIGN_OR_RETURN(select.join_on, ParseExpr());
      }
    }
    if (Accept("WHERE")) {
      FABRIC_ASSIGN_OR_RETURN(select.where, ParseExpr());
    }
    if (Accept("GROUP")) {
      FABRIC_RETURN_IF_ERROR(Expect("BY"));
      do {
        FABRIC_ASSIGN_OR_RETURN(std::string col, Identifier());
        select.group_by.push_back(std::move(col));
      } while (Accept(","));
    }
    if (Accept("ORDER")) {
      FABRIC_RETURN_IF_ERROR(Expect("BY"));
      do {
        OrderItem item;
        FABRIC_ASSIGN_OR_RETURN(item.column, Identifier());
        if (Accept("DESC")) {
          item.descending = true;
        } else {
          Accept("ASC");
        }
        select.order_by.push_back(std::move(item));
      } while (Accept(","));
    }
    if (Accept("LIMIT")) {
      FABRIC_ASSIGN_OR_RETURN(select.limit, IntegerLiteral());
    }
    if (Accept("AT")) {
      FABRIC_RETURN_IF_ERROR(Expect("EPOCH"));
      if (Accept("LATEST")) {
        select.at_epoch = -1;
      } else {
        FABRIC_ASSIGN_OR_RETURN(select.at_epoch, IntegerLiteral());
      }
    }
    return select;
  }

  static bool IsClauseKeyword(const std::string& upper) {
    return upper == "FROM" || upper == "WHERE" || upper == "GROUP" ||
           upper == "ORDER" || upper == "LIMIT" || upper == "AT" ||
           upper == "AS" || upper == "ASC" || upper == "DESC";
  }

  // Words that can never start an expression identifier (prevents
  // "SELECT FROM" from parsing FROM as a column).
  static bool IsReservedWord(const std::string& upper) {
    static const char* const kReserved[] = {
        "SELECT", "FROM",   "WHERE",  "GROUP",  "ORDER",    "BY",
        "LIMIT",  "AT",     "EPOCH",  "AS",     "ASC",      "DESC",
        "INSERT", "INTO",   "VALUES", "UPDATE", "SET",      "DELETE",
        "CREATE", "DROP",   "ALTER",  "TABLE",  "VIEW",     "TRUNCATE",
        "RENAME", "TO",     "AND",    "OR",     "NOT",      "IS",
        "BEGIN",  "COMMIT", "ROLLBACK", "USING", "PARAMETERS",
        "SEGMENTED", "UNSEGMENTED", "REPLACE", "EXISTS", "IF",
        "JOIN", "ON", "INNER", "PROJECTION", "EXPLAIN"};
    for (const char* word : kReserved) {
      if (upper == word) return true;
    }
    return false;
  }

  Result<Statement> ParseExplain() {
    FABRIC_RETURN_IF_ERROR(Expect("EXPLAIN"));
    ExplainStmt explain;
    FABRIC_ASSIGN_OR_RETURN(SelectStmt select, ParseSelect());
    explain.select = std::make_unique<SelectStmt>(std::move(select));
    return Statement(std::move(explain));
  }

  Result<Statement> ParseCreateProjection() {
    CreateProjectionStmt create;
    FABRIC_ASSIGN_OR_RETURN(create.name, Identifier());
    FABRIC_RETURN_IF_ERROR(Expect("AS"));
    FABRIC_RETURN_IF_ERROR(Expect("SELECT"));
    if (Accept("*")) {
      create.star = true;
    } else {
      do {
        FABRIC_ASSIGN_OR_RETURN(std::string col, Identifier());
        create.columns.push_back(std::move(col));
      } while (Accept(","));
    }
    FABRIC_RETURN_IF_ERROR(Expect("FROM"));
    FABRIC_ASSIGN_OR_RETURN(create.anchor, Identifier());
    if (Accept("ORDER")) {
      FABRIC_RETURN_IF_ERROR(Expect("BY"));
      do {
        FABRIC_ASSIGN_OR_RETURN(std::string col, Identifier());
        create.order_by.push_back(std::move(col));
      } while (Accept(","));
    }
    if (Accept("SEGMENTED")) {
      FABRIC_RETURN_IF_ERROR(Expect("BY"));
      FABRIC_RETURN_IF_ERROR(Expect("HASH"));
      FABRIC_RETURN_IF_ERROR(Expect("("));
      do {
        FABRIC_ASSIGN_OR_RETURN(std::string col, Identifier());
        create.segmentation_columns.push_back(std::move(col));
      } while (Accept(","));
      FABRIC_RETURN_IF_ERROR(Expect(")"));
      Accept("ALL");
      Accept("NODES");
    } else if (Accept("UNSEGMENTED")) {
      Accept("ALL");
      Accept("NODES");
      create.unsegmented = true;
    }
    return Statement(std::move(create));
  }

  Result<Statement> ParseCreate() {
    FABRIC_RETURN_IF_ERROR(Expect("CREATE"));
    if (Accept("PROJECTION")) return ParseCreateProjection();
    if (Accept("VIEW")) {
      CreateViewStmt view;
      FABRIC_ASSIGN_OR_RETURN(view.name, Identifier());
      FABRIC_RETURN_IF_ERROR(Expect("AS"));
      FABRIC_ASSIGN_OR_RETURN(SelectStmt select, ParseSelect());
      view.select = std::make_unique<SelectStmt>(std::move(select));
      return Statement(std::move(view));
    }
    FABRIC_RETURN_IF_ERROR(Expect("TABLE"));
    CreateTableStmt create;
    if (Accept("IF")) {
      FABRIC_RETURN_IF_ERROR(Expect("NOT"));
      FABRIC_RETURN_IF_ERROR(Expect("EXISTS"));
      create.if_not_exists = true;
    }
    FABRIC_ASSIGN_OR_RETURN(create.name, Identifier());
    FABRIC_RETURN_IF_ERROR(Expect("("));
    do {
      FABRIC_ASSIGN_OR_RETURN(std::string col, Identifier());
      if (Peek().kind != Token::Kind::kKeywordOrIdent) {
        return Error("expected column type");
      }
      std::string type_name = Next().text;
      // Swallow VARCHAR(n) length.
      if (Accept("(")) {
        FABRIC_ASSIGN_OR_RETURN(int64_t len, IntegerLiteral());
        (void)len;
        FABRIC_RETURN_IF_ERROR(Expect(")"));
      }
      FABRIC_ASSIGN_OR_RETURN(DataType type,
                              storage::ParseDataType(type_name));
      create.columns.emplace_back(std::move(col), type);
    } while (Accept(","));
    FABRIC_RETURN_IF_ERROR(Expect(")"));
    if (Accept("SEGMENTED")) {
      FABRIC_RETURN_IF_ERROR(Expect("BY"));
      FABRIC_RETURN_IF_ERROR(Expect("HASH"));
      FABRIC_RETURN_IF_ERROR(Expect("("));
      do {
        FABRIC_ASSIGN_OR_RETURN(std::string col, Identifier());
        create.segmentation_columns.push_back(std::move(col));
      } while (Accept(","));
      FABRIC_RETURN_IF_ERROR(Expect(")"));
      Accept("ALL");
      Accept("NODES");
    } else if (Accept("UNSEGMENTED")) {
      Accept("ALL");
      Accept("NODES");
      create.unsegmented = true;
    }
    return Statement(std::move(create));
  }

  Result<Statement> ParseDrop() {
    FABRIC_RETURN_IF_ERROR(Expect("DROP"));
    DropStmt drop;
    if (Accept("VIEW")) {
      drop.is_view = true;
    } else if (Accept("PROJECTION")) {
      drop.is_projection = true;
    } else {
      FABRIC_RETURN_IF_ERROR(Expect("TABLE"));
    }
    if (Accept("IF")) {
      FABRIC_RETURN_IF_ERROR(Expect("EXISTS"));
      drop.if_exists = true;
    }
    FABRIC_ASSIGN_OR_RETURN(drop.name, Identifier());
    return Statement(std::move(drop));
  }

  Result<Statement> ParseAlter() {
    FABRIC_RETURN_IF_ERROR(Expect("ALTER"));
    FABRIC_RETURN_IF_ERROR(Expect("TABLE"));
    RenameTableStmt rename;
    FABRIC_ASSIGN_OR_RETURN(rename.from, Identifier());
    FABRIC_RETURN_IF_ERROR(Expect("RENAME"));
    FABRIC_RETURN_IF_ERROR(Expect("TO"));
    FABRIC_ASSIGN_OR_RETURN(rename.to, Identifier());
    if (Accept("REPLACE")) rename.replace = true;
    return Statement(std::move(rename));
  }

  Result<Statement> ParseTruncate() {
    FABRIC_RETURN_IF_ERROR(Expect("TRUNCATE"));
    FABRIC_RETURN_IF_ERROR(Expect("TABLE"));
    TruncateStmt truncate;
    FABRIC_ASSIGN_OR_RETURN(truncate.table, Identifier());
    return Statement(std::move(truncate));
  }

  Result<Statement> ParseInsert() {
    InsertStmt insert;
    if (Accept("DIRECT_HINT")) insert.direct = true;
    FABRIC_RETURN_IF_ERROR(Expect("INSERT"));
    if (Accept("DIRECT_HINT")) insert.direct = true;
    FABRIC_RETURN_IF_ERROR(Expect("INTO"));
    FABRIC_ASSIGN_OR_RETURN(insert.table, Identifier());
    if (Accept("(")) {
      do {
        FABRIC_ASSIGN_OR_RETURN(std::string col, Identifier());
        insert.columns.push_back(std::move(col));
      } while (Accept(","));
      FABRIC_RETURN_IF_ERROR(Expect(")"));
    }
    if (Peek().Is("SELECT")) {
      FABRIC_ASSIGN_OR_RETURN(SelectStmt select, ParseSelect());
      insert.select = std::make_unique<SelectStmt>(std::move(select));
      return Statement(std::move(insert));
    }
    FABRIC_RETURN_IF_ERROR(Expect("VALUES"));
    do {
      FABRIC_RETURN_IF_ERROR(Expect("("));
      std::vector<ExprPtr> row;
      do {
        FABRIC_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
        row.push_back(std::move(e));
      } while (Accept(","));
      FABRIC_RETURN_IF_ERROR(Expect(")"));
      insert.rows.push_back(std::move(row));
    } while (Accept(","));
    return Statement(std::move(insert));
  }

  Result<Statement> ParseUpdate() {
    FABRIC_RETURN_IF_ERROR(Expect("UPDATE"));
    UpdateStmt update;
    FABRIC_ASSIGN_OR_RETURN(update.table, Identifier());
    FABRIC_RETURN_IF_ERROR(Expect("SET"));
    do {
      FABRIC_ASSIGN_OR_RETURN(std::string col, Identifier());
      FABRIC_RETURN_IF_ERROR(Expect("="));
      FABRIC_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
      update.assignments.emplace_back(std::move(col), std::move(e));
    } while (Accept(","));
    if (Accept("WHERE")) {
      FABRIC_ASSIGN_OR_RETURN(update.where, ParseExpr());
    }
    return Statement(std::move(update));
  }

  Result<Statement> ParseDelete() {
    FABRIC_RETURN_IF_ERROR(Expect("DELETE"));
    FABRIC_RETURN_IF_ERROR(Expect("FROM"));
    DeleteStmt del;
    FABRIC_ASSIGN_OR_RETURN(del.table, Identifier());
    if (Accept("WHERE")) {
      FABRIC_ASSIGN_OR_RETURN(del.where, ParseExpr());
    }
    return Statement(std::move(del));
  }

  Result<Statement> ParseTxn(TxnStmt::Kind kind) {
    Next();  // consume the keyword
    Accept("TRANSACTION");
    Accept("WORK");
    return Statement(TxnStmt{kind});
  }

  // --------------------------------------------------------- expressions
  // Precedence climbing: OR < AND < NOT < comparison/IS < additive(+,-,||)
  // < multiplicative(*,/,%) < unary < primary.

  Result<ExprPtr> ParseExpr() { return ParseOr(); }

  Result<ExprPtr> ParseOr() {
    FABRIC_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAnd());
    while (Accept("OR")) {
      FABRIC_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAnd());
      lhs = Expr::Binary("OR", std::move(lhs), std::move(rhs));
    }
    return std::move(lhs);
  }

  Result<ExprPtr> ParseAnd() {
    FABRIC_ASSIGN_OR_RETURN(ExprPtr lhs, ParseNot());
    while (Accept("AND")) {
      FABRIC_ASSIGN_OR_RETURN(ExprPtr rhs, ParseNot());
      lhs = Expr::Binary("AND", std::move(lhs), std::move(rhs));
    }
    return std::move(lhs);
  }

  Result<ExprPtr> ParseNot() {
    if (Accept("NOT")) {
      FABRIC_ASSIGN_OR_RETURN(ExprPtr operand, ParseNot());
      return Expr::Unary("NOT", std::move(operand));
    }
    return ParseComparison();
  }

  Result<ExprPtr> ParseComparison() {
    FABRIC_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAdditive());
    if (Accept("IS")) {
      bool negated = Accept("NOT");
      FABRIC_RETURN_IF_ERROR(Expect("NULL"));
      return Expr::IsNull(std::move(lhs), negated);
    }
    for (const char* op : {"=", "<>", "!=", "<=", ">=", "<", ">"}) {
      if (Peek().Is(op)) {
        Next();
        FABRIC_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAdditive());
        std::string norm = (std::string_view(op) == "!=") ? "<>" : op;
        return Expr::Binary(norm, std::move(lhs), std::move(rhs));
      }
    }
    return std::move(lhs);
  }

  Result<ExprPtr> ParseAdditive() {
    FABRIC_ASSIGN_OR_RETURN(ExprPtr lhs, ParseMultiplicative());
    while (true) {
      const char* op = nullptr;
      if (Peek().Is("+")) op = "+";
      else if (Peek().Is("-")) op = "-";
      else if (Peek().Is("||")) op = "||";
      if (op == nullptr) break;
      Next();
      FABRIC_ASSIGN_OR_RETURN(ExprPtr rhs, ParseMultiplicative());
      lhs = Expr::Binary(op, std::move(lhs), std::move(rhs));
    }
    return std::move(lhs);
  }

  Result<ExprPtr> ParseMultiplicative() {
    FABRIC_ASSIGN_OR_RETURN(ExprPtr lhs, ParseUnary());
    while (true) {
      const char* op = nullptr;
      if (Peek().Is("*")) op = "*";
      else if (Peek().Is("/")) op = "/";
      else if (Peek().Is("%")) op = "%";
      if (op == nullptr) break;
      Next();
      FABRIC_ASSIGN_OR_RETURN(ExprPtr rhs, ParseUnary());
      lhs = Expr::Binary(op, std::move(lhs), std::move(rhs));
    }
    return std::move(lhs);
  }

  Result<ExprPtr> ParseUnary() {
    if (Accept("-")) {
      // Fold the sign into integer literals so INT64_MIN (whose magnitude
      // does not fit in int64) parses — hash-range predicates start at
      // exactly that value.
      const Token& t = Peek();
      if (t.kind == Token::Kind::kNumber &&
          t.text.find('.') == std::string::npos &&
          t.text.find('e') == std::string::npos &&
          t.text.find('E') == std::string::npos) {
        int64_t v = 0;
        if (ParseInt64(StrCat("-", t.text), &v)) {
          Next();
          return Expr::Literal(Value::Int64(v));
        }
      }
      FABRIC_ASSIGN_OR_RETURN(ExprPtr operand, ParseUnary());
      return Expr::Unary("-", std::move(operand));
    }
    if (Accept("+")) return ParseUnary();
    return ParsePrimary();
  }

  Result<ExprPtr> ParsePrimary() {
    const Token& t = Peek();
    if (t.kind == Token::Kind::kNumber) {
      Next();
      if (t.text.find('.') == std::string::npos &&
          t.text.find('e') == std::string::npos &&
          t.text.find('E') == std::string::npos) {
        int64_t v = 0;
        if (!ParseInt64(t.text, &v)) return Error("bad integer literal");
        return Expr::Literal(Value::Int64(v));
      }
      double v = 0;
      if (!ParseDouble(t.text, &v)) return Error("bad float literal");
      return Expr::Literal(Value::Float64(v));
    }
    if (t.kind == Token::Kind::kString) {
      Next();
      return Expr::Literal(Value::Varchar(t.text));
    }
    if (t.Is("(")) {
      Next();
      FABRIC_ASSIGN_OR_RETURN(ExprPtr inner, ParseExpr());
      FABRIC_RETURN_IF_ERROR(Expect(")"));
      return std::move(inner);
    }
    if (t.kind == Token::Kind::kKeywordOrIdent) {
      if (t.Is("NULL")) {
        Next();
        return Expr::Literal(Value::Null());
      }
      if (t.Is("TRUE")) {
        Next();
        return Expr::Literal(Value::Bool(true));
      }
      if (t.Is("FALSE")) {
        Next();
        return Expr::Literal(Value::Bool(false));
      }
      if (IsReservedWord(t.upper)) return Error("expected expression");
      FABRIC_ASSIGN_OR_RETURN(std::string name, Identifier());
      if (!Peek().Is("(")) return Expr::ColumnRef(std::move(name));
      // Function call; COUNT(*) allowed.
      Next();  // '('
      std::vector<ExprPtr> args;
      bool star = false;
      if (Peek().Is("*")) {
        Next();
        star = true;
      } else if (!Peek().Is(")") && !Peek().Is("USING")) {
        do {
          FABRIC_ASSIGN_OR_RETURN(ExprPtr arg, ParseExpr());
          args.push_back(std::move(arg));
        } while (Accept(","));
      }
      ExprPtr call = Expr::Call(std::move(name), std::move(args));
      if (star) call->op = "*";  // marks COUNT(*)
      if (Accept("USING")) {
        FABRIC_RETURN_IF_ERROR(Expect("PARAMETERS"));
        do {
          FABRIC_ASSIGN_OR_RETURN(std::string pname, Identifier());
          FABRIC_RETURN_IF_ERROR(Expect("="));
          FABRIC_ASSIGN_OR_RETURN(ExprPtr pvalue, ParseExpr());
          if (pvalue->kind != Expr::Kind::kLiteral) {
            return Error("USING PARAMETERS values must be literals");
          }
          call->parameters.emplace(ToLower(pname),
                                   std::move(pvalue->literal));
        } while (Accept(","));
      }
      FABRIC_RETURN_IF_ERROR(Expect(")"));
      return std::move(call);
    }
    return Error("expected expression");
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<Statement> Parse(std::string_view sql) {
  FABRIC_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(sql));
  Parser parser(std::move(tokens));
  return parser.ParseStatement();
}

Result<ExprPtr> ParseExpression(std::string_view sql) {
  FABRIC_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(sql));
  Parser parser(std::move(tokens));
  return parser.ParseStandaloneExpression();
}

}  // namespace fabric::vertica::sql
