#include "vertica/sql_eval.h"

#include <cmath>
#include <optional>

#include "common/hash.h"
#include "common/string_util.h"

namespace fabric::vertica::sql {

using storage::DataType;
using storage::Value;

int64_t RingHashToSigned(uint64_t ring_hash) {
  return static_cast<int64_t>(ring_hash ^ (1ULL << 63));
}

uint64_t SignedToRingHash(int64_t signed_hash) {
  return static_cast<uint64_t>(signed_hash) ^ (1ULL << 63);
}

bool IsAggregateFunction(const std::string& upper_name) {
  return upper_name == "COUNT" || upper_name == "SUM" ||
         upper_name == "AVG" || upper_name == "MIN" || upper_name == "MAX";
}

bool ContainsAggregate(const Expr& expr) {
  return ContainsAggregate(expr, nullptr);
}

bool ContainsAggregate(const Expr& expr,
                       const AggregateUdxResolver* aggregate_udx) {
  if (expr.kind == Expr::Kind::kCall) {
    if (IsAggregateFunction(expr.function)) return true;
    if (aggregate_udx != nullptr && *aggregate_udx &&
        (*aggregate_udx)(expr.function) != nullptr) {
      return true;
    }
  }
  for (const ExprPtr& arg : expr.args) {
    if (ContainsAggregate(*arg, aggregate_udx)) return true;
  }
  return false;
}

DataType InferType(const Expr& expr, const storage::Schema& schema) {
  switch (expr.kind) {
    case Expr::Kind::kLiteral:
      return expr.literal.is_null() ? DataType::kVarchar
                                    : expr.literal.type();
    case Expr::Kind::kColumnRef: {
      auto idx = schema.IndexOf(expr.column);
      return idx.ok() ? schema.column(*idx).type : DataType::kVarchar;
    }
    case Expr::Kind::kUnary:
      return expr.op == "NOT" ? DataType::kBool
                              : InferType(*expr.args[0], schema);
    case Expr::Kind::kBinary: {
      const std::string& op = expr.op;
      if (op == "AND" || op == "OR" || op == "=" || op == "<>" ||
          op == "<" || op == "<=" || op == ">" || op == ">=") {
        return DataType::kBool;
      }
      if (op == "||") return DataType::kVarchar;
      if (op == "/") return DataType::kFloat64;
      DataType lhs = InferType(*expr.args[0], schema);
      DataType rhs = InferType(*expr.args[1], schema);
      if (lhs == DataType::kFloat64 || rhs == DataType::kFloat64) {
        return DataType::kFloat64;
      }
      return DataType::kInt64;
    }
    case Expr::Kind::kIsNull:
      return DataType::kBool;
    case Expr::Kind::kCall: {
      if (expr.function == "COUNT") return DataType::kInt64;
      if (expr.function == "SUM" || expr.function == "AVG") {
        return DataType::kFloat64;
      }
      if (expr.function == "MIN" || expr.function == "MAX") {
        return expr.args.empty() ? DataType::kFloat64
                                 : InferType(*expr.args[0], schema);
      }
      if (expr.function == "HASH" || expr.function == "LENGTH") {
        return DataType::kInt64;
      }
      if (expr.function == "APPROXIMATE_COUNT_DISTINCT" ||
          expr.function == "HLL_ESTIMATE") {
        return DataType::kInt64;
      }
      if (expr.function == "HLL_SKETCH" ||
          expr.function == "HLL_UNION_AGG") {
        return DataType::kVarchar;
      }
      if (expr.function == "UPPER" || expr.function == "LOWER") {
        return DataType::kVarchar;
      }
      return DataType::kFloat64;  // UDx default: numeric score
    }
  }
  return DataType::kVarchar;
}

std::string SelectItemName(const SelectItem& item, int position) {
  if (!item.alias.empty()) return item.alias;
  if (item.expr != nullptr && item.expr->kind == Expr::Kind::kColumnRef) {
    return item.expr->column;
  }
  return StrCat("col", position);
}

namespace {

// Kleene three-valued boolean: nullopt == SQL NULL/unknown.
using Tribool = std::optional<bool>;

Result<Tribool> AsTribool(const Value& v) {
  if (v.is_null()) return Tribool(std::nullopt);
  if (v.type() == DataType::kBool) return Tribool(v.bool_value());
  return InvalidArgumentError(
      StrCat("expected BOOLEAN, got ", DataTypeName(v.type())));
}

Value FromTribool(Tribool t) {
  if (!t.has_value()) return Value::Null();
  return Value::Bool(*t);
}

Result<Value> EvalBinary(const Expr& expr, const EvalContext& context);
Result<Value> EvalCall(const Expr& expr, const EvalContext& context);

}  // namespace

Result<Value> Eval(const Expr& expr, const EvalContext& context) {
  switch (expr.kind) {
    case Expr::Kind::kLiteral:
      return expr.literal;
    case Expr::Kind::kColumnRef: {
      if (context.schema == nullptr || context.row == nullptr) {
        return InvalidArgumentError(
            StrCat("column '", expr.column, "' in row-less context"));
      }
      FABRIC_ASSIGN_OR_RETURN(int index,
                              context.schema->IndexOf(expr.column));
      return (*context.row)[index];
    }
    case Expr::Kind::kUnary: {
      FABRIC_ASSIGN_OR_RETURN(Value operand, Eval(*expr.args[0], context));
      if (expr.op == "NOT") {
        FABRIC_ASSIGN_OR_RETURN(Tribool t, AsTribool(operand));
        if (!t.has_value()) return Value::Null();
        return Value::Bool(!*t);
      }
      // Unary minus.
      if (operand.is_null()) return Value::Null();
      if (operand.type() == DataType::kInt64) {
        return Value::Int64(-operand.int64_value());
      }
      FABRIC_ASSIGN_OR_RETURN(double d, operand.AsDouble());
      return Value::Float64(-d);
    }
    case Expr::Kind::kBinary:
      return EvalBinary(expr, context);
    case Expr::Kind::kIsNull: {
      FABRIC_ASSIGN_OR_RETURN(Value operand, Eval(*expr.args[0], context));
      bool is_null = operand.is_null();
      return Value::Bool(expr.negated ? !is_null : is_null);
    }
    case Expr::Kind::kCall:
      return EvalCall(expr, context);
  }
  return InternalError("corrupt expression");
}

namespace {

Result<Value> EvalBinary(const Expr& expr, const EvalContext& context) {
  const std::string& op = expr.op;

  // AND / OR need Kleene short-circuit semantics.
  if (op == "AND" || op == "OR") {
    FABRIC_ASSIGN_OR_RETURN(Value lv, Eval(*expr.args[0], context));
    FABRIC_ASSIGN_OR_RETURN(Tribool lhs, AsTribool(lv));
    if (op == "AND" && lhs.has_value() && !*lhs) return Value::Bool(false);
    if (op == "OR" && lhs.has_value() && *lhs) return Value::Bool(true);
    FABRIC_ASSIGN_OR_RETURN(Value rv, Eval(*expr.args[1], context));
    FABRIC_ASSIGN_OR_RETURN(Tribool rhs, AsTribool(rv));
    if (op == "AND") {
      if (rhs.has_value() && !*rhs) return Value::Bool(false);
      if (lhs.has_value() && rhs.has_value()) return Value::Bool(true);
      return Value::Null();
    }
    if (rhs.has_value() && *rhs) return Value::Bool(true);
    if (lhs.has_value() && rhs.has_value()) return Value::Bool(false);
    return Value::Null();
  }

  FABRIC_ASSIGN_OR_RETURN(Value lhs, Eval(*expr.args[0], context));
  FABRIC_ASSIGN_OR_RETURN(Value rhs, Eval(*expr.args[1], context));

  // Comparisons: NULL operand => NULL result.
  if (op == "=" || op == "<>" || op == "<" || op == "<=" || op == ">" ||
      op == ">=") {
    if (lhs.is_null() || rhs.is_null()) return Value::Null();
    FABRIC_ASSIGN_OR_RETURN(int c, lhs.Compare(rhs));
    if (op == "=") return Value::Bool(c == 0);
    if (op == "<>") return Value::Bool(c != 0);
    if (op == "<") return Value::Bool(c < 0);
    if (op == "<=") return Value::Bool(c <= 0);
    if (op == ">") return Value::Bool(c > 0);
    return Value::Bool(c >= 0);
  }

  if (op == "||") {
    if (lhs.is_null() || rhs.is_null()) return Value::Null();
    return Value::Varchar(
        StrCat(lhs.ToDisplayString(), rhs.ToDisplayString()));
  }

  // Arithmetic.
  if (lhs.is_null() || rhs.is_null()) return Value::Null();
  bool both_int = !lhs.is_null() && !rhs.is_null() &&
                  lhs.type() == DataType::kInt64 &&
                  rhs.type() == DataType::kInt64;
  if (op == "%") {
    if (!both_int) return InvalidArgumentError("% requires integers");
    int64_t divisor = rhs.int64_value();
    if (divisor == 0) return InvalidArgumentError("division by zero");
    return Value::Int64(lhs.int64_value() % divisor);
  }
  FABRIC_ASSIGN_OR_RETURN(double a, lhs.AsDouble());
  FABRIC_ASSIGN_OR_RETURN(double b, rhs.AsDouble());
  if (op == "+") {
    if (both_int) return Value::Int64(lhs.int64_value() + rhs.int64_value());
    return Value::Float64(a + b);
  }
  if (op == "-") {
    if (both_int) return Value::Int64(lhs.int64_value() - rhs.int64_value());
    return Value::Float64(a - b);
  }
  if (op == "*") {
    if (both_int) return Value::Int64(lhs.int64_value() * rhs.int64_value());
    return Value::Float64(a * b);
  }
  if (op == "/") {
    if (b == 0) return InvalidArgumentError("division by zero");
    // Vertica-style: / always yields float.
    return Value::Float64(a / b);
  }
  return InternalError(StrCat("unknown operator '", op, "'"));
}

Result<Value> EvalCall(const Expr& expr, const EvalContext& context) {
  const std::string& fn = expr.function;
  if (IsAggregateFunction(fn) ||
      (context.aggregate_udx != nullptr && *context.aggregate_udx &&
       (*context.aggregate_udx)(fn) != nullptr)) {
    return InvalidArgumentError(
        StrCat(fn, " is an aggregate and cannot be evaluated per row"));
  }

  std::vector<Value> args;
  args.reserve(expr.args.size());
  for (const ExprPtr& arg : expr.args) {
    FABRIC_ASSIGN_OR_RETURN(Value v, Eval(*arg, context));
    args.push_back(std::move(v));
  }

  if (fn == "HASH") {
    if (args.empty()) return InvalidArgumentError("HASH() needs arguments");
    uint64_t h = kSegmentationHashSeed;
    for (const Value& v : args) {
      h = HashCombine(h, v.SegmentationHash());
    }
    return Value::Int64(RingHashToSigned(h));
  }
  if (fn == "ABS") {
    if (args.size() != 1) return InvalidArgumentError("ABS(x)");
    if (args[0].is_null()) return Value::Null();
    if (args[0].type() == DataType::kInt64) {
      return Value::Int64(std::abs(args[0].int64_value()));
    }
    FABRIC_ASSIGN_OR_RETURN(double d, args[0].AsDouble());
    return Value::Float64(std::fabs(d));
  }
  if (fn == "FLOOR" || fn == "CEIL" || fn == "CEILING") {
    if (args.size() != 1) return InvalidArgumentError(StrCat(fn, "(x)"));
    if (args[0].is_null()) return Value::Null();
    FABRIC_ASSIGN_OR_RETURN(double d, args[0].AsDouble());
    return Value::Float64(fn == "FLOOR" ? std::floor(d) : std::ceil(d));
  }
  if (fn == "LENGTH") {
    if (args.size() != 1) return InvalidArgumentError("LENGTH(s)");
    if (args[0].is_null()) return Value::Null();
    if (args[0].type() != DataType::kVarchar) {
      return InvalidArgumentError("LENGTH expects VARCHAR");
    }
    return Value::Int64(
        static_cast<int64_t>(args[0].varchar_value().size()));
  }
  if (fn == "UPPER" || fn == "LOWER") {
    if (args.size() != 1) return InvalidArgumentError(StrCat(fn, "(s)"));
    if (args[0].is_null()) return Value::Null();
    if (args[0].type() != DataType::kVarchar) {
      return InvalidArgumentError(StrCat(fn, " expects VARCHAR"));
    }
    return Value::Varchar(fn == "UPPER" ? ToUpper(args[0].varchar_value())
                                        : ToLower(args[0].varchar_value()));
  }

  // Fall through to the UDx resolver.
  if (context.udx != nullptr && *context.udx) {
    return (*context.udx)(fn, args, expr.parameters);
  }
  return NotFoundError(StrCat("unknown function '", fn, "'"));
}

}  // namespace

Result<bool> EvalPredicate(const Expr& expr, const EvalContext& context) {
  FABRIC_ASSIGN_OR_RETURN(Value v, Eval(expr, context));
  if (v.is_null()) return false;
  if (v.type() != DataType::kBool) {
    return InvalidArgumentError("predicate is not BOOLEAN");
  }
  return v.bool_value();
}

bool EvalPredicateLenient(const Expr& expr, const EvalContext& context) {
  auto ok = EvalPredicate(expr, context);
  return ok.ok() && *ok;
}

}  // namespace fabric::vertica::sql
