#include "vertica/udx_hll.h"

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/hll.h"
#include "common/string_util.h"
#include "storage/value.h"
#include "vertica/database.h"

namespace fabric::vertica {
namespace {

using storage::Value;

// Extra-argument handling shared by the sketching aggregates: one
// optional constant integer precision.
Result<int> PrecisionFrom(const std::string& fn,
                          const std::vector<Value>& extra) {
  if (extra.empty()) return hll::kDefaultPrecision;
  if (extra.size() > 1) {
    return InvalidArgumentError(
        StrCat(fn, " takes at most one precision argument"));
  }
  if (extra[0].type() != storage::DataType::kInt64) {
    return InvalidArgumentError(
        StrCat(fn, " precision must be an integer constant"));
  }
  const int precision = static_cast<int>(extra[0].int64_value());
  if (!hll::ValidPrecision(precision)) {
    return InvalidArgumentError(
        StrCat(fn, " precision must be in [", hll::kMinPrecision, ", ",
               hll::kMaxPrecision, "], got ", precision));
  }
  return precision;
}

// Accumulator states are the raw form (precision byte + registers) so a
// per-row update touches one register instead of re-encoding the sketch.
Status AddHashToRawState(uint64_t hash, std::string* state) {
  const int precision = static_cast<uint8_t>((*state)[0]);
  const auto [index, rank] = hll::Sketch::SlotFor(hash, precision);
  char* reg = &(*state)[1 + index];
  if (rank > static_cast<uint8_t>(*reg)) *reg = static_cast<char>(rank);
  return Status::OK();
}

Status MergeRawStates(const std::string& other, std::string* state) {
  if (other.empty()) return Status::OK();
  if (state->empty()) {
    *state = other;
    return Status::OK();
  }
  if (other.size() != state->size() || other[0] != (*state)[0]) {
    return InvalidArgumentError(
        StrCat("cannot merge HLL sketches of different precisions (",
               static_cast<int>(static_cast<uint8_t>((*state)[0])), " vs ",
               static_cast<int>(static_cast<uint8_t>(other[0])), ")"));
  }
  for (size_t i = 1; i < state->size(); ++i) {
    if (static_cast<uint8_t>(other[i]) >
        static_cast<uint8_t>((*state)[i])) {
      (*state)[i] = other[i];
    }
  }
  return Status::OK();
}

// The sketch-building state machine shared by APPROXIMATE_COUNT_DISTINCT
// and HLL_SKETCH; only finalize differs.
sql::AggregateUdx SketchingAggregate(const std::string& fn) {
  sql::AggregateUdx udx;
  udx.init = [fn](const std::vector<Value>& extra) -> Result<std::string> {
    FABRIC_ASSIGN_OR_RETURN(int precision, PrecisionFrom(fn, extra));
    FABRIC_ASSIGN_OR_RETURN(hll::Sketch sketch,
                            hll::Sketch::Create(precision));
    return sketch.ToRawState();
  };
  udx.update = [](const Value& input, std::string* state) {
    return AddHashToRawState(input.DistinctHash(), state);
  };
  udx.merge = MergeRawStates;
  return udx;
}

}  // namespace

void RegisterHllFunctions(Database* db) {
  {
    sql::AggregateUdx udx = SketchingAggregate("APPROXIMATE_COUNT_DISTINCT");
    udx.output_type = storage::DataType::kInt64;
    udx.finalize = [](const std::string& state) -> Result<Value> {
      FABRIC_ASSIGN_OR_RETURN(hll::Sketch sketch,
                              hll::Sketch::FromRawState(state));
      return Value::Int64(sketch.Estimate());
    };
    db->RegisterAggregateFunction("APPROXIMATE_COUNT_DISTINCT",
                                  std::move(udx));
  }
  {
    sql::AggregateUdx udx = SketchingAggregate("HLL_SKETCH");
    udx.output_type = storage::DataType::kVarchar;
    udx.finalize = [](const std::string& state) -> Result<Value> {
      FABRIC_ASSIGN_OR_RETURN(hll::Sketch sketch,
                              hll::Sketch::FromRawState(state));
      return Value::Varchar(sketch.Serialize());
    };
    db->RegisterAggregateFunction("HLL_SKETCH", std::move(udx));
  }
  {
    // Union of previously serialized sketches. The state starts empty
    // ("no sketch yet") because the precision comes from the inputs.
    sql::AggregateUdx udx;
    udx.output_type = storage::DataType::kVarchar;
    udx.init = [](const std::vector<Value>& extra) -> Result<std::string> {
      if (!extra.empty()) {
        return InvalidArgumentError(
            "HLL_UNION_AGG takes exactly one sketch argument");
      }
      return std::string();
    };
    udx.update = [](const Value& input, std::string* state) -> Status {
      if (input.type() != storage::DataType::kVarchar) {
        return InvalidArgumentError(
            "HLL_UNION_AGG expects serialized sketches (VARCHAR)");
      }
      FABRIC_ASSIGN_OR_RETURN(hll::Sketch sketch,
                              hll::Sketch::Deserialize(input.varchar_value()));
      return MergeRawStates(sketch.ToRawState(), state);
    };
    udx.merge = MergeRawStates;
    udx.finalize = [](const std::string& state) -> Result<Value> {
      // SQL aggregate of zero non-null inputs: NULL, matching MIN/MAX.
      if (state.empty()) return Value::Null();
      FABRIC_ASSIGN_OR_RETURN(hll::Sketch sketch,
                              hll::Sketch::FromRawState(state));
      return Value::Varchar(sketch.Serialize());
    };
    db->RegisterAggregateFunction("HLL_UNION_AGG", std::move(udx));
  }
  db->RegisterScalarFunction(
      "HLL_ESTIMATE",
      [](const std::vector<Value>& args,
         const std::map<std::string, Value>&) -> Result<Value> {
        if (args.size() != 1) {
          return InvalidArgumentError("HLL_ESTIMATE(sketch)");
        }
        if (args[0].is_null()) return Value::Null();
        if (args[0].type() != storage::DataType::kVarchar) {
          return InvalidArgumentError(
              "HLL_ESTIMATE expects a serialized sketch (VARCHAR)");
        }
        FABRIC_ASSIGN_OR_RETURN(
            hll::Sketch sketch,
            hll::Sketch::Deserialize(args[0].varchar_value()));
        return Value::Int64(sketch.Estimate());
      });
}

}  // namespace fabric::vertica
