#include "vertica/copy_stream.h"

#include "common/logging.h"
#include "common/string_util.h"
#include "obs/trace.h"
#include "storage/profile.h"

namespace fabric::vertica {

using storage::DataProfile;
using storage::Row;

CopyStream::CopyStream(Session* session, TableDef def,
                       Options options, storage::TxnId txn, bool autocommit,
                       wm::Grant grant)
    : session_(session),
      def_(std::move(def)),
      options_(options),
      txn_(txn),
      autocommit_(autocommit),
      grant_(grant) {}

CopyStream::~CopyStream() { ReleaseGrant(); }

void CopyStream::ReleaseGrant() {
  if (!grant_.valid()) return;
  wm::WorkloadManager* wm = session_->database()->workload_manager();
  if (wm != nullptr) wm->Release(grant_);
  grant_ = wm::Grant{};
}

Result<std::unique_ptr<CopyStream>> CopyStream::Open(
    sim::Process& self, Session* session, const std::string& table,
    Options options) {
  Database* db = session->database();
  FABRIC_ASSIGN_OR_RETURN(const TableDef* resolved,
                          db->catalog().GetTable(table));
  // Snap the definition before the first yield: the catalog entry can be
  // renamed away (S2V staging promote) while this stream waits in the
  // admission queue or on the insert lock below.
  TableDef def = *resolved;
  // Admission: the whole load runs under one grant from the session's
  // pool (queue timeouts bound the wait if the session already holds
  // insert locks from an earlier statement of its transaction).
  wm::Grant grant;
  wm::WorkloadManager* wm = db->workload_manager();
  if (wm != nullptr) {
    FABRIC_ASSIGN_OR_RETURN(
        grant, wm->Admit(self, session->node(), session->resource_pool(),
                         /*memory_request=*/0));
  }
  auto release = [&] {
    if (wm != nullptr && grant.valid()) wm->Release(grant);
  };
  // COPY statement setup cost.
  Status status = net::RunCpu(self, db->network(),
                              db->node_host(session->node()),
                              db->cost().statement_overhead_cpu);
  if (!status.ok()) {
    release();
    return status;
  }
  bool autocommit = !session->in_transaction();
  storage::TxnId txn;
  if (autocommit) {
    txn = db->BeginTxnInternal();
  } else {
    txn = session->txn_;
  }
  status = db->LockTableI(self, txn, def.name);
  if (!status.ok()) {
    release();
    return status;
  }
  db->TouchTable(txn, def.name);
  return std::unique_ptr<CopyStream>(new CopyStream(
      session, std::move(def), options, txn, autocommit, grant));
}

Status CopyStream::WriteBatch(sim::Process& self,
                              const std::vector<Row>& rows) {
  FABRIC_CHECK(!finished_) << "WriteBatch after Finish";
  Database* db = session_->database();
  const CostModel& cost = db->cost();
  int initiator = session_->node();
  if (session_->broken()) {
    return UnavailableError(
        StrCat("connection to ", db->node_name(initiator), " lost"));
  }

  // Validate: bad rows are rejected, good rows proceed.
  std::vector<Row> good;
  good.reserve(rows.size());
  for (const Row& row : rows) {
    if (ValidateRow(def_.schema, row).ok()) {
      good.push_back(row);
    } else {
      ++totals_.rejected;
      if (totals_.rejected_sample.size() < 10) {
        totals_.rejected_sample.push_back(row);
      }
    }
  }

  const double scale = db->EffectiveScale(def_.name);
  DataProfile profile = ProfileRows(rows);
  profile.ScaleBy(scale);

  // Inbound leg: Avro batch over the external NIC from the client, or a
  // local disk read for file-based COPY.
  if (options_.from_local_disk) {
    // Native file COPY: read the CSV split off the node's (shared) data
    // disk — the contention that makes ~2 splits per node the paper's
    // sweet spot (Table 4).
    double csv_bytes = profile.raw_bytes * 1.4;  // text expansion on disk
    const net::Host& host = db->node_host(initiator);
    if (host.has_disk()) {
      FABRIC_RETURN_IF_ERROR(
          db->network()->Transfer(self, {host.disk}, csv_bytes));
    } else {
      FABRIC_RETURN_IF_ERROR(
          self.Sleep(csv_bytes / cost.disk_read_bandwidth));
    }
  } else {
    double wire = profile.AvroWireBytes(cost);
    double cap = profile.StreamRateCap(cost.copy_stream_bytes_per_sec,
                                       cost.copy_stream_row_overhead, wire);
    FABRIC_RETURN_IF_ERROR(session_->StreamToClientReverse(self, wire));
    (void)cap;  // the per-connection cap applies to the parse stage below
  }

  // Parse + decode on the initiator. The JDBC/Avro-fed path is bounded
  // by one core per stream; native CSV COPY uses Vertica's optimized
  // multi-threaded parser (cheaper per byte, up to 2 cores).
  if (options_.from_local_disk) {
    double parse_cpu = profile.CopyParseCpu(cost) / 5.0;
    FABRIC_RETURN_IF_ERROR(db->network()->Transfer(
        self, {db->node_host(initiator).cpu},
        parse_cpu * net::kCpuUnitsPerCore, 2 * net::kSingleCoreRate));
  } else {
    // Vertica parallelizes a single COPY's parse/decode internally; cap
    // one stream at four cores so low-concurrency loads are not bound by
    // a single core while heavy fleets still contend for the node pool.
    FABRIC_RETURN_IF_ERROR(db->network()->Transfer(
        self, {db->node_host(initiator).cpu},
        profile.CopyParseCpu(cost) * net::kCpuUnitsPerCore,
        4 * net::kSingleCoreRate));
  }

  // Route rows to owner segments over the internal fabric.
  FABRIC_ASSIGN_OR_RETURN(Database::TableStorage * storage,
                          db->GetStorage(def_.name));
  const int64_t good_count = static_cast<int64_t>(good.size());
  // Maintain every projection of the table inside the same load
  // transaction (before routing moves the rows out of `good`).
  FABRIC_RETURN_IF_ERROR(db->WriteProjectionRows(
      self, def_, good, txn_, initiator, options_.direct, scale));
  std::vector<std::vector<Row>> per_node(db->num_nodes());
  for (Row& row : good) {
    int owner = db->OwnerNode(def_, row);
    if (owner < 0) {
      for (int n = 0; n < db->num_nodes(); ++n) per_node[n].push_back(row);
    } else {
      per_node[owner].push_back(std::move(row));
    }
  }
  obs::TraceEvent("vertica", "copy.batch",
                  {{"table", def_.name},
                   {"rows", static_cast<int64_t>(rows.size())},
                   {"rejected",
                    static_cast<int64_t>(rows.size() - good.size())},
                   {"txn", txn_}});
  obs::IncrCounter("vertica.copy_rows", static_cast<double>(rows.size()));
  bool replicated = def_.segmentation.unsegmented();
  for (int n = 0; n < db->num_nodes(); ++n) {
    if (per_node[n].empty()) continue;
    // Deliver to every live copy (k=1: primary + buddy for segmented
    // tables, each UP replica for unsegmented); DOWN copies are caught up
    // by recovery.
    std::vector<Database::SegmentCopy> copies;
    if (replicated) {
      if (!db->node_up(n)) continue;
      copies.push_back(Database::SegmentCopy{storage->per_node[n].get(), n});
    } else {
      FABRIC_ASSIGN_OR_RETURN(copies, db->WriteCopies(storage, n));
    }
    DataProfile node_profile = ProfileRows(per_node[n]);
    node_profile.ScaleBy(scale);
    for (size_t c = 0; c < copies.size(); ++c) {
      const Database::SegmentCopy& copy = copies[c];
      if (copy.host != initiator) {
        FABRIC_RETURN_IF_ERROR(db->network()->Transfer(
            self,
            {db->node_host(initiator).int_egress,
             db->node_host(copy.host).int_ingress},
            node_profile.raw_bytes));
      }
      // Sort + encode into ROS on the owner (cheap relative to parse).
      FABRIC_RETURN_IF_ERROR(net::RunCpu(
          self, db->network(), db->node_host(copy.host),
          node_profile.raw_bytes * cost.scan_cpu_per_byte));
      std::vector<Row> batch = c + 1 < copies.size()
                                   ? per_node[n]
                                   : std::move(per_node[n]);
      if (options_.direct) {
        FABRIC_RETURN_IF_ERROR(
            copy.store->InsertPendingDirect(txn_, std::move(batch)));
      } else {
        // Trickle COPY lands in the WOS: stall admission while this
        // store sits at the Tuple Mover's hard cap instead of letting
        // the WOS grow without bound.
        FABRIC_RETURN_IF_ERROR(db->tuple_mover()->AdmitWos(
            self, def_.name, copy.store, copy.host));
        FABRIC_RETURN_IF_ERROR(
            copy.store->InsertPending(txn_, std::move(batch)));
      }
    }
  }
  totals_.loaded += good_count;
  return Status::OK();
}

Result<CopyStream::LoadResult> CopyStream::Finish(sim::Process& self) {
  FABRIC_CHECK(!finished_) << "Finish called twice";
  finished_ = true;
  ReleaseGrant();
  Database* db = session_->database();
  if (autocommit_) {
    // A COPY whose node died must not commit on the dead node.
    if (session_->broken()) {
      db->AbortTxnInternal(txn_);
      return UnavailableError(StrCat("connection to ",
                                     db->node_name(session_->node()),
                                     " lost"));
    }
    Status commit = db->CommitTxnInternal(self, txn_);
    if (!commit.ok()) {
      db->AbortTxnInternal(txn_);
      return commit;
    }
  }
  obs::TraceEvent("vertica", "copy.finish",
                  {{"table", def_.name},
                   {"loaded", totals_.loaded},
                   {"rejected", totals_.rejected},
                   {"txn", txn_}});
  return totals_;
}

}  // namespace fabric::vertica
