#ifndef FABRIC_VERTICA_DESIGNER_DESIGNER_H_
#define FABRIC_VERTICA_DESIGNER_DESIGNER_H_

#include <deque>
#include <map>
#include <string>
#include <vector>

#include "vertica/catalog.h"
#include "vertica/designer/workload.h"

namespace fabric::vertica::designer {

// Knobs for one designer run.
struct Options {
  // Extra projection storage allowed, as a fraction of the anchors' total
  // raw bytes. Counts primary copies only; the k=1 buddy doubles the
  // physical spend, like it does for every other layout.
  double budget_fraction = 0.5;
  int max_proposals = 4;
};

// One proposed projection: enough to render DDL and to explain why the
// designer picked it.
struct Proposal {
  std::string name;
  std::string anchor;
  std::vector<std::string> columns;       // anchor-schema case
  std::vector<std::string> sort_columns;  // subset of `columns`
  std::vector<std::string> segment_columns;  // empty = unsegmented
  // Total planner-cost reduction across the replayed history at the
  // moment this proposal was selected (greedy marginal gain).
  double benefit = 0;
  double storage_bytes = 0;  // estimated primary-copy raw bytes
  std::string ddl;           // executable CREATE PROJECTION statement
};

// Replays the captured workload against candidate projections derived
// from the observed query shapes — column subsets with sort orders led
// by join/group-by keys and segmentation on the join key — and greedily
// picks the set that minimizes total planner cost within the storage
// budget. Pure function of its inputs: same catalog, history and sizes
// always yield the same proposals, in the same order.
std::vector<Proposal> Propose(
    const Catalog& catalog, const std::deque<QueryRequest>& history,
    const std::map<std::string, double>& table_raw_bytes,
    const Options& options);

}  // namespace fabric::vertica::designer

#endif  // FABRIC_VERTICA_DESIGNER_DESIGNER_H_
