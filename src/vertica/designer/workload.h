#ifndef FABRIC_VERTICA_DESIGNER_WORKLOAD_H_
#define FABRIC_VERTICA_DESIGNER_WORKLOAD_H_

#include <cstdint>
#include <string>
#include <vector>

namespace fabric::vertica {

// One executed base-table scan, reduced to the shape the database
// designer replays: which columns the query touched, how it joined and
// grouped, and what it cost in virtual time. A two-table join records
// one entry per side. Captured into Database's bounded history and
// exposed as v_monitor.query_requests.
struct QueryRequest {
  int64_t request_id = 0;
  std::string table;       // base table this scan planned against
  std::string join_table;  // other side of the INNER JOIN ("" = no join)
  // Lower-cased column names of `table`.
  std::vector<std::string> referenced;
  std::vector<std::string> group_by;
  std::vector<std::string> join_keys;  // this side's join-key columns
  bool aggregate = false;
  std::string pool;      // resource pool ("" = the default pool)
  std::string strategy;  // join strategy chosen ("", "hash", "merge")
  double started_at = 0;  // virtual time the statement began
  double duration = 0;    // stamped when the statement finishes
};

}  // namespace fabric::vertica

#endif  // FABRIC_VERTICA_DESIGNER_WORKLOAD_H_
