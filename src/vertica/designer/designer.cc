#include "vertica/designer/designer.h"

#include <algorithm>
#include <set>

#include "common/string_util.h"
#include "vertica/projections/planner.h"

namespace fabric::vertica::designer {

namespace {

// One candidate layout derived from an observed query shape, with its
// hypothetical ProjectionDef ready for the planner to cost.
struct Candidate {
  std::string anchor;  // lower-cased
  std::vector<std::string> columns;       // anchor-schema case
  std::vector<std::string> sort_columns;
  std::vector<std::string> segment_columns;
  std::string identity;  // dedup key
  ProjectionDef def;     // name left empty until proposed
  double storage_bytes = 0;
};

std::string JoinNames(const std::vector<std::string>& names) {
  std::string out;
  for (const std::string& name : names) {
    if (!out.empty()) out += ",";
    out += ToLower(name);
  }
  return out;
}

// The query shape a history entry replays as. Unknown columns (dropped
// since capture) are filtered out.
projections::QueryShape ShapeOfRequest(const QueryRequest& request,
                                       const TableDef& def) {
  projections::QueryShape shape;
  std::set<std::string> referenced;
  for (const std::string& col : request.referenced) {
    if (def.schema.Contains(col)) referenced.insert(ToLower(col));
  }
  for (const std::string& col : request.group_by) {
    if (!def.schema.Contains(col)) continue;
    shape.group_by.push_back(ToLower(col));
    referenced.insert(ToLower(col));
  }
  for (const std::string& col : request.join_keys) {
    if (!def.schema.Contains(col)) continue;
    shape.join_keys.push_back(ToLower(col));
    referenced.insert(ToLower(col));
  }
  shape.referenced.assign(referenced.begin(), referenced.end());
  shape.aggregate = request.aggregate || !shape.group_by.empty();
  return shape;
}

// Builds the hypothetical ProjectionDef so projections::Eligible /
// CostProjection can treat a candidate exactly like a real projection.
bool ResolveCandidateDef(const TableDef& anchor, Candidate* cand) {
  ProjectionDef& def = cand->def;
  def.anchor = anchor.name;
  def.create_epoch = 0;
  std::vector<storage::ColumnDef> schema_cols;
  for (const std::string& name : cand->columns) {
    auto idx = anchor.schema.IndexOf(name);
    if (!idx.ok()) return false;
    def.columns.push_back(*idx);
    schema_cols.push_back(anchor.schema.column(*idx));
  }
  def.schema = storage::Schema(std::move(schema_cols));
  for (const std::string& name : cand->sort_columns) {
    auto idx = def.schema.IndexOf(name);
    if (!idx.ok()) return false;
    def.sort_columns.push_back(*idx);
  }
  for (const std::string& name : cand->segment_columns) {
    auto idx = def.schema.IndexOf(name);
    if (!idx.ok()) return false;
    def.segmentation.columns.push_back(*idx);
  }
  return true;
}

// True when the candidate duplicates an existing layout of the anchor
// (the super projection or a named projection) — nothing to gain.
bool DuplicatesExisting(const Catalog& catalog, const TableDef& anchor,
                        const Candidate& cand) {
  if (cand.sort_columns.empty() &&
      static_cast<int>(cand.def.columns.size()) ==
          anchor.schema.num_columns()) {
    bool identity = true;
    for (size_t i = 0; i < cand.def.columns.size(); ++i) {
      if (cand.def.columns[i] != static_cast<int>(i)) identity = false;
    }
    if (identity) return true;  // the super projection
  }
  for (const ProjectionDef* proj : catalog.ProjectionsOf(anchor.name)) {
    if (proj->columns == cand.def.columns &&
        proj->sort_columns == cand.def.sort_columns &&
        proj->segmentation.columns == cand.def.segmentation.columns) {
      return true;
    }
  }
  return false;
}

}  // namespace

std::vector<Proposal> Propose(
    const Catalog& catalog, const std::deque<QueryRequest>& history,
    const std::map<std::string, double>& table_raw_bytes,
    const Options& options) {
  // Replayable history entries, each paired with its anchor and shape.
  struct Replay {
    const TableDef* def;
    projections::QueryShape shape;
    double current_cost;  // under the already-selected proposal set
  };
  std::vector<Replay> replays;
  for (const QueryRequest& request : history) {
    auto def = catalog.GetTable(request.table);
    if (!def.ok()) continue;  // table dropped since capture
    Replay replay;
    replay.def = *def;
    replay.shape = ShapeOfRequest(request, **def);
    if (replay.shape.referenced.empty()) continue;
    replay.current_cost =
        projections::ChoosePlan(catalog, **def, replay.shape).cost;
    replays.push_back(std::move(replay));
  }

  // Candidate layouts from the observed shapes: join/group-by keys lead
  // both the column list and the sort order; segmentation follows the
  // join key so equal keys co-locate across tables.
  double anchors_total_bytes = 0;
  for (const auto& [table, bytes] : table_raw_bytes) {
    anchors_total_bytes += bytes;
  }
  std::map<std::string, Candidate> candidates;  // identity -> candidate
  for (const Replay& replay : replays) {
    const TableDef& def = *replay.def;
    Candidate cand;
    cand.anchor = ToLower(def.name);
    std::set<std::string> seen;
    auto add_column = [&](const std::string& lower) {
      if (seen.count(lower) > 0) return;
      seen.insert(lower);
      auto idx = def.schema.IndexOf(lower);
      cand.columns.push_back(def.schema.column(*idx).name);
    };
    for (const std::string& col : replay.shape.join_keys) add_column(col);
    for (const std::string& col : replay.shape.group_by) add_column(col);
    for (const std::string& col : replay.shape.referenced) add_column(col);
    if (cand.columns.empty()) continue;
    std::set<std::string> sort_seen;
    for (const std::string& col : replay.shape.join_keys) {
      if (sort_seen.insert(col).second) cand.sort_columns.push_back(col);
    }
    for (const std::string& col : replay.shape.group_by) {
      if (sort_seen.insert(col).second) cand.sort_columns.push_back(col);
    }
    if (!replay.shape.join_keys.empty()) {
      cand.segment_columns.push_back(replay.shape.join_keys.front());
    } else {
      // Keep the anchor's segmentation when the subset covers it, else
      // replicate (unsegmented) — a narrow replicated layout is still a
      // fine merge-join inner side.
      bool covered = true;
      std::vector<std::string> anchor_seg;
      for (int c : def.segmentation.columns) {
        std::string name = ToLower(def.schema.column(c).name);
        if (seen.count(name) == 0) covered = false;
        anchor_seg.push_back(std::move(name));
      }
      if (covered) cand.segment_columns = std::move(anchor_seg);
    }
    if (!ResolveCandidateDef(def, &cand)) continue;
    if (DuplicatesExisting(catalog, def, cand)) continue;
    double table_bytes = 0;
    auto bytes_it = table_raw_bytes.find(cand.anchor);
    if (bytes_it != table_raw_bytes.end()) table_bytes = bytes_it->second;
    cand.storage_bytes =
        table_bytes * static_cast<double>(cand.columns.size()) /
        static_cast<double>(std::max(1, def.schema.num_columns()));
    cand.identity = StrCat(cand.anchor, "|", JoinNames(cand.columns), "|",
                           JoinNames(cand.sort_columns), "|",
                           JoinNames(cand.segment_columns));
    candidates.emplace(cand.identity, std::move(cand));
  }

  // Greedy selection: each round takes the candidate with the largest
  // marginal cost reduction that still fits the remaining budget. Ties
  // break toward smaller storage, then identity order — deterministic.
  double budget = options.budget_fraction * anchors_total_bytes;
  std::vector<Proposal> proposals;
  std::set<std::string> taken;
  int auto_index = 1;
  while (static_cast<int>(proposals.size()) < options.max_proposals) {
    const Candidate* best = nullptr;
    double best_gain = 0;
    for (const auto& [identity, cand] : candidates) {
      if (taken.count(identity) > 0) continue;
      if (cand.storage_bytes > budget + 1e-9) continue;
      double gain = 0;
      for (const Replay& replay : replays) {
        if (ToLower(replay.def->name) != cand.anchor) continue;
        if (!projections::Eligible(*replay.def, cand.def, replay.shape)) {
          continue;
        }
        double cost =
            projections::CostProjection(*replay.def, &cand.def, replay.shape);
        if (cost < replay.current_cost) gain += replay.current_cost - cost;
      }
      if (gain <= 1e-12) continue;
      bool better = gain > best_gain + 1e-12;
      bool tied = !better && gain > best_gain - 1e-12;
      if (tied && best != nullptr) {
        better = cand.storage_bytes < best->storage_bytes - 1e-9 ||
                 (cand.storage_bytes < best->storage_bytes + 1e-9 &&
                  cand.identity < best->identity);
      }
      if (best == nullptr || better) {
        best = &cand;
        best_gain = gain;
      }
    }
    if (best == nullptr) break;
    taken.insert(best->identity);
    budget -= best->storage_bytes;
    // Apply the winner to the replay costs before the next round.
    for (Replay& replay : replays) {
      if (ToLower(replay.def->name) != best->anchor) continue;
      if (!projections::Eligible(*replay.def, best->def, replay.shape)) {
        continue;
      }
      double cost =
          projections::CostProjection(*replay.def, &best->def, replay.shape);
      replay.current_cost = std::min(replay.current_cost, cost);
    }

    Proposal proposal;
    proposal.anchor = best->anchor;
    proposal.columns = best->columns;
    proposal.sort_columns = best->sort_columns;
    proposal.segment_columns = best->segment_columns;
    proposal.benefit = best_gain;
    proposal.storage_bytes = best->storage_bytes;
    do {
      proposal.name = StrCat(best->anchor, "_auto_", auto_index++);
    } while (catalog.HasProjection(proposal.name) ||
             catalog.HasTable(proposal.name));
    std::string ddl = StrCat("CREATE PROJECTION ", proposal.name,
                             " AS SELECT ");
    for (size_t i = 0; i < proposal.columns.size(); ++i) {
      ddl += StrCat(i == 0 ? "" : ", ", proposal.columns[i]);
    }
    ddl += StrCat(" FROM ", proposal.anchor);
    for (size_t i = 0; i < proposal.sort_columns.size(); ++i) {
      ddl += StrCat(i == 0 ? " ORDER BY " : ", ", proposal.sort_columns[i]);
    }
    if (proposal.segment_columns.empty()) {
      ddl += " UNSEGMENTED ALL NODES";
    } else {
      ddl += " SEGMENTED BY HASH(";
      for (size_t i = 0; i < proposal.segment_columns.size(); ++i) {
        ddl += StrCat(i == 0 ? "" : ", ", proposal.segment_columns[i]);
      }
      ddl += ") ALL NODES";
    }
    proposal.ddl = std::move(ddl);
    proposals.push_back(std::move(proposal));
  }
  return proposals;
}

}  // namespace fabric::vertica::designer
