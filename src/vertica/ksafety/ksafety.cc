#include "vertica/ksafety/ksafety.h"

#include <algorithm>

#include "common/logging.h"
#include "sim/engine.h"
#include "vertica/database.h"

namespace fabric::vertica {

std::string_view NodeStateName(NodeState state) {
  switch (state) {
    case NodeState::kUp:
      return "UP";
    case NodeState::kDown:
      return "DOWN";
    case NodeState::kRecovering:
      return "RECOVERING";
  }
  return "UNKNOWN";
}

namespace ksafety {

NodeFailureSchedule& NodeFailureSchedule::KillNode(int node,
                                                   double at_vtime) {
  outages_.push_back(Outage{node, at_vtime, -1});
  return *this;
}

NodeFailureSchedule& NodeFailureSchedule::RestartNode(int node,
                                                      double at_vtime) {
  // A bare restart entry: modeled as an outage with no kill of its own.
  Outage outage;
  outage.node = node;
  outage.kill_at = -1;
  outage.restart_at = at_vtime;
  outages_.push_back(outage);
  return *this;
}

NodeFailureSchedule& NodeFailureSchedule::KillAndRestart(int node,
                                                         double kill_at,
                                                         double restart_at) {
  FABRIC_CHECK(restart_at >= kill_at)
      << "restart scheduled before the kill";
  outages_.push_back(Outage{node, kill_at, restart_at});
  return *this;
}

void NodeFailureSchedule::Install(Database* db) const {
  for (const Outage& outage : outages_) {
    int node = outage.node;
    if (outage.kill_at >= 0) {
      db->engine()->ScheduleAt(outage.kill_at, [db, node] {
        Status status = db->KillNode(node);
        if (!status.ok()) {
          FABRIC_LOG(Warning) << "scheduled KillNode(" << node
                              << "): " << status.ToString();
        }
      });
    }
    if (outage.restart_at >= 0) {
      db->engine()->ScheduleAt(outage.restart_at, [db, node] {
        Status status = db->RestartNode(node);
        if (!status.ok()) {
          FABRIC_LOG(Warning) << "scheduled RestartNode(" << node
                              << "): " << status.ToString();
        }
      });
    }
  }
}

NodeFailureSchedule RandomNodeOutages(uint64_t seed, int num_nodes,
                                      const RandomOutageOptions& options) {
  NodeFailureSchedule schedule;
  if (num_nodes < 2 || options.max_outages <= 0) return schedule;
  Rng rng(seed);
  // One victim per schedule: repeated crash/restart cycles of a single
  // node can never lose both copies of a segment (its ring neighbours
  // stay up), so seeded suites always exercise failover and recovery
  // rather than the terminal cluster shutdown.
  int victim = static_cast<int>(rng.NextUint64(num_nodes));
  double t = rng.NextDouble() * options.horizon;
  for (int i = 0; i < options.max_outages; ++i) {
    if (t >= options.horizon) break;
    if (!rng.NextBool(options.restart_probability)) {
      schedule.KillNode(victim, t);
      break;
    }
    double downtime =
        options.min_downtime +
        rng.NextDouble() *
            std::max(0.0, options.max_downtime - options.min_downtime);
    schedule.KillAndRestart(victim, t, t + downtime);
    // Serialize outages: the next kill lands after this restart fired
    // (the node may still be RECOVERING — killing a recovering node is a
    // legal, interesting case that sends it back to DOWN).
    t += downtime + rng.NextDouble() * options.horizon;
  }
  return schedule;
}

}  // namespace ksafety
}  // namespace fabric::vertica
