#ifndef FABRIC_VERTICA_KSAFETY_KSAFETY_H_
#define FABRIC_VERTICA_KSAFETY_KSAFETY_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "common/random.h"
#include "common/result.h"

namespace fabric::vertica {

class Database;

// Lifecycle of one Vertica node under k-safety (Section "C-Store 7 Years
// Later": a cluster with k=1 keeps serving through any single node loss).
//
//   kUp ──KillNode──▶ kDown ──RestartNode──▶ kRecovering ──catch-up──▶ kUp
//
// A DOWN node serves nothing; its segments are served from their buddy
// copies. A RECOVERING node is transferring the delta it missed from the
// buddy copies and still serves nothing until the catch-up completes.
enum class NodeState { kUp, kDown, kRecovering };

std::string_view NodeStateName(NodeState state);

namespace ksafety {

// One planned node outage on the virtual-time axis: kill `node` at
// `kill_at`; restart it at `restart_at` (< 0 means the node stays down).
struct Outage {
  int node = 0;
  double kill_at = 0;
  double restart_at = -1;
};

// Deterministic crash/restart schedule for Vertica nodes — the
// database-side mirror of spark::FailureInjector. A schedule is a plain
// list of outages built either by hand (scripted tests) or from a seed
// (randomized property suites); Install() arms every entry as an engine
// callback, so kills land at exact virtual times regardless of what the
// workload is doing.
class NodeFailureSchedule {
 public:
  NodeFailureSchedule() = default;

  // Scripted entry points (chainable, mirroring ScriptedFailureInjector).
  NodeFailureSchedule& KillNode(int node, double at_vtime);
  NodeFailureSchedule& RestartNode(int node, double at_vtime);
  NodeFailureSchedule& KillAndRestart(int node, double kill_at,
                                      double restart_at);

  const std::vector<Outage>& outages() const { return outages_; }

  // Arms the schedule on the database's engine. Call before engine.Run();
  // entries fire in engine context via ScheduleAt. The database must
  // outlive the simulation run.
  void Install(Database* db) const;

 private:
  std::vector<Outage> outages_;
};

// Options for the seeded random schedule.
struct RandomOutageOptions {
  // Outages are drawn uniformly over [0, horizon) virtual seconds.
  double horizon = 10.0;
  int max_outages = 2;
  // Each killed node restarts after a uniform delay in
  // [min_downtime, max_downtime); with restart_probability 0 the node
  // stays down for good.
  double min_downtime = 0.5;
  double max_downtime = 3.0;
  double restart_probability = 1.0;
};

// Builds a deterministic seeded outage schedule that never takes down two
// ring-adjacent nodes at once — the k=1 double-copy loss that shuts the
// cluster down — so randomized suites exercise failover and recovery, not
// total outage. Identical (seed, num_nodes, options) give identical
// schedules.
NodeFailureSchedule RandomNodeOutages(uint64_t seed, int num_nodes,
                                      const RandomOutageOptions& options);

}  // namespace ksafety
}  // namespace fabric::vertica

#endif  // FABRIC_VERTICA_KSAFETY_KSAFETY_H_
