#ifndef FABRIC_CONNECTOR_AVRO_H_
#define FABRIC_CONNECTOR_AVRO_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "storage/schema.h"

namespace fabric::connector {

// Compact binary row batch codec standing in for Apache Avro (Section
// 3.2.2): schema'd, no delimiters, null bitmap per row, varint-free fixed
// layout. S2V encodes each task's rows with this before shipping them to
// Vertica's COPY.
std::string AvroEncodeBatch(const storage::Schema& schema,
                            const std::vector<storage::Row>& rows);

Result<std::vector<storage::Row>> AvroDecodeBatch(
    const storage::Schema& schema, const std::string& data);

}  // namespace fabric::connector

#endif  // FABRIC_CONNECTOR_AVRO_H_
