#include "connector/s2v.h"

#include <algorithm>

#include "common/logging.h"
#include "common/string_util.h"
#include "connector/avro.h"
#include "connector/failover.h"
#include "obs/trace.h"
#include "storage/profile.h"
#include "vertica/copy_stream.h"
#include "vertica/session.h"

namespace fabric::connector {

using spark::SaveMode;
using spark::SourceOptions;
using spark::TaskContext;
using storage::DataProfile;
using storage::Row;
using storage::Schema;
using vertica::QueryResult;
using vertica::Session;

Result<std::shared_ptr<S2VRelation>> S2VRelation::Create(
    sim::Process& driver, vertica::Database* db,
    spark::SparkCluster* cluster, const SourceOptions& options,
    SaveMode mode, const Schema& schema, std::string job_name) {
  auto relation = std::shared_ptr<S2VRelation>(new S2VRelation());
  relation->db_ = db;
  relation->cluster_ = cluster;
  FABRIC_ASSIGN_OR_RETURN(relation->target_, options.Get("table"));
  relation->mode_ = mode;
  relation->schema_ = schema;
  relation->job_name_ = std::move(job_name);
  relation->tolerance_ = options.GetDoubleOr("failedrowstolerance", 0.0);
  relation->prehash_ =
      EqualsIgnoreCase(options.GetOr("prehash", "false"), "true");
  relation->resource_pool_ = options.GetOr("resource_pool", "");
  relation->batch_rows_ = static_cast<int>(
      options.GetIntOr("batchrows", 5000));
  relation->staging_table_ =
      StrCat(relation->target_, "_stage_", relation->job_name_);
  relation->status_table_ =
      StrCat("s2v_task_status_", relation->job_name_);
  relation->committer_table_ =
      StrCat("s2v_last_committer_", relation->job_name_);
  if (options.Has("host")) {
    FABRIC_ASSIGN_OR_RETURN(std::string host, options.Get("host"));
    FABRIC_ASSIGN_OR_RETURN(relation->entry_node_, db->ResolveNode(host));
  }
  (void)driver;
  return relation;
}

std::function<int(const storage::Row&)> S2VRelation::Partitioner(
    int num_partitions) {
  if (!prehash_) return nullptr;
  // The staging table uses the default segmentation (the first one or
  // two columns); rows of node n go to tasks congruent to n modulo the
  // node count, cycling within each node's task group for balance.
  std::vector<int> seg_columns;
  for (int i = 0; i < std::min(2, schema_.num_columns()); ++i) {
    seg_columns.push_back(i);
  }
  int nodes = db_->num_nodes();
  auto cursors = std::make_shared<std::vector<int>>(nodes, 0);
  return [this, seg_columns, nodes, cursors,
          num_partitions](const storage::Row& row) -> int {
    uint64_t h = storage::RowSegmentationHash(row, seg_columns);
    int owner = vertica::RingSegmentOf(h, nodes);
    int group = std::max(1, num_partitions / nodes);
    int slot = (*cursors)[owner]++ % group;
    int task = owner + slot * nodes;
    return task < num_partitions ? task : owner;
  };
}

Status S2VRelation::Setup(sim::Process& driver, int num_partitions) {
  num_partitions_ = num_partitions;
  FABRIC_ASSIGN_OR_RETURN(
      std::unique_ptr<Session> session,
      ConnectWithFailover(driver, db_, entry_node_,
                          &cluster_->driver_host()));
  session->set_resource_pool(resource_pool_);

  // Mode checks against the current target.
  bool target_exists = db_->catalog().HasTable(target_);
  if (mode_ == SaveMode::kErrorIfExists && target_exists) {
    return AlreadyExistsError(
        StrCat("table '", target_, "' exists (mode ErrorIfExists)"));
  }
  if (mode_ == SaveMode::kAppend && target_exists) {
    FABRIC_ASSIGN_OR_RETURN(const vertica::TableDef* def,
                            db_->catalog().GetTable(target_));
    if (!(def->schema == schema_)) {
      return InvalidArgumentError(
          StrCat("append schema mismatch on '", target_, "'"));
    }
  }
  if (mode_ == SaveMode::kAppend && !target_exists) {
    FABRIC_RETURN_IF_ERROR(
        session->Execute(driver, StrCat("CREATE TABLE ", target_, " (",
                                        schema_.ToDdlBody(), ")"))
            .status());
  }

  // The staging table plus the three bookkeeping tables (Section 3.2).
  FABRIC_RETURN_IF_ERROR(
      session->Execute(driver, StrCat("CREATE TABLE ", staging_table_,
                                      " (", schema_.ToDdlBody(), ")"))
          .status());
  FABRIC_RETURN_IF_ERROR(
      session->Execute(driver,
                       StrCat("CREATE TABLE ", status_table_,
                              " (task INTEGER, inserted INTEGER, failed "
                              "INTEGER, done BOOLEAN) UNSEGMENTED ALL "
                              "NODES"))
          .status());
  std::string status_rows;
  for (int p = 0; p < num_partitions_; ++p) {
    if (p > 0) status_rows += ", ";
    status_rows += StrCat("(", p, ", 0, 0, FALSE)");
  }
  FABRIC_RETURN_IF_ERROR(
      session->Execute(driver, StrCat("INSERT INTO ", status_table_,
                                      " VALUES ", status_rows))
          .status());
  FABRIC_RETURN_IF_ERROR(
      session->Execute(driver, StrCat("CREATE TABLE ", committer_table_,
                                      " (task INTEGER) UNSEGMENTED ALL "
                                      "NODES"))
          .status());
  FABRIC_RETURN_IF_ERROR(
      session->Execute(driver, StrCat("INSERT INTO ", committer_table_,
                                      " VALUES (-1)"))
          .status());
  // Permanent job record: survives total Spark failure (users consult it
  // to learn the job's fate).
  FABRIC_RETURN_IF_ERROR(
      session->Execute(driver,
                       StrCat("CREATE TABLE IF NOT EXISTS ",
                              kFinalStatusTable,
                              " (job VARCHAR, failed_pct FLOAT, finished "
                              "BOOLEAN) UNSEGMENTED ALL NODES"))
          .status());
  FABRIC_RETURN_IF_ERROR(
      session->Execute(driver, StrCat("INSERT INTO ", kFinalStatusTable,
                                      " VALUES ('", job_name_,
                                      "', 0.0, FALSE)"))
          .status());
  // Bookkeeping tables hold real (unscaled) row counts.
  db_->MarkScaleExempt(status_table_);
  db_->MarkScaleExempt(committer_table_);
  db_->MarkScaleExempt(kFinalStatusTable);
  obs::TraceEvent("s2v", "save.setup",
                  {{"job", job_name_},
                   {"partitions", num_partitions_},
                   {"append", mode_ == SaveMode::kAppend}});
  return session->Close(driver);
}

Status S2VRelation::StageData(TaskContext& task, int partition,
                              const std::vector<Row>& rows,
                              Session* session) {
  sim::Process& self = *task.process;
  const CostModel& cost = cluster_->cost();

  FABRIC_RETURN_IF_ERROR(session->Execute(self, "BEGIN").status());
  FABRIC_ASSIGN_OR_RETURN(
      std::unique_ptr<vertica::CopyStream> stream,
      vertica::CopyStream::Open(self, session, staging_table_,
                                vertica::CopyStream::Options{}));
  int64_t loaded = 0;
  int64_t rejected = 0;
  // Batch so each COPY buffer is ~32 MB at cost-model scale: the task
  // then alternates encode / transfer / parse at a granularity that
  // pipelines (Section 4.2.1), independent of data_scale.
  size_t batch = static_cast<size_t>(batch_rows_);
  if (!rows.empty()) {
    double scaled_row_bytes =
        storage::ProfileRows({rows.front()}).raw_bytes * cost.data_scale;
    if (scaled_row_bytes > 0) {
      // Deterministic per-task jitter (+-25%) keeps the fleet of COPY
      // streams out of lockstep, so one task's network phase overlaps
      // another's parse phase — the desynchronization a real cluster
      // gets for free from TCP and OS scheduling noise.
      double jitter = 0.75 + 0.5 * ((partition % 7) / 6.0);
      batch = std::max<size_t>(
          1, static_cast<size_t>(32e6 * jitter / scaled_row_bytes));
      batch = std::min(batch, static_cast<size_t>(batch_rows_));
    }
  }
  for (size_t begin = 0; begin < rows.size() || begin == 0;
       begin += batch) {
    size_t end = std::min(rows.size(), begin + batch);
    std::vector<Row> batch(rows.begin() + begin, rows.begin() + end);
    // Encode the batch into Avro on the Spark side (the task alternates
    // between encoding and transferring, Section 4.2.1). The encode is
    // real — the bytes travel through the codec — and the CPU is charged
    // to this worker.
    std::string encoded = AvroEncodeBatch(schema_, batch);
    DataProfile profile = storage::ProfileRows(batch);
    profile.ScaleBy(cost.data_scale);
    FABRIC_RETURN_IF_ERROR(task.Compute(profile.AvroEncodeCpu(cost)));
    FABRIC_ASSIGN_OR_RETURN(std::vector<Row> decoded,
                            AvroDecodeBatch(schema_, encoded));
    FABRIC_RETURN_IF_ERROR(stream->WriteBatch(self, decoded));
    if (rows.empty()) break;
  }
  FABRIC_ASSIGN_OR_RETURN(vertica::CopyStream::LoadResult load,
                          stream->Finish(self));
  loaded = load.loaded;
  rejected = load.rejected;

  // Conditional done-flag update under the same transaction as the COPY:
  // a duplicate attempt finds done already TRUE and aborts, discarding
  // its copy of the data (Phase 1).
  FABRIC_ASSIGN_OR_RETURN(
      QueryResult updated,
      session->Execute(self,
                       StrCat("UPDATE ", status_table_, " SET done = TRUE",
                              ", inserted = ", loaded,
                              ", failed = ", rejected, " WHERE task = ",
                              partition, " AND done = FALSE")));
  if (updated.affected == 1) {
    Status committed = session->Execute(self, "COMMIT").status();
    // Traced at the durability point, not the ack: a kill inside the
    // commit/ack window (the Section 2.2.2 hazard) still staged this
    // partition exactly once, and the trace must say so — while a kill
    // before durability must leave no commit event at all.
    if (session->last_commit_epoch() != 0) {
      obs::TraceEvent(
          "s2v", "phase1.commit",
          {{"job", job_name_},
           {"partition", partition},
           {"attempt", task.attempt},
           {"loaded", loaded},
           {"rejected", rejected},
           {"epoch", static_cast<int64_t>(session->last_commit_epoch())},
           {"acked", committed.ok()}});
      obs::IncrCounter("s2v.phase1_commits");
    }
    return committed;
  }
  obs::TraceEvent("s2v", "phase1.duplicate",
                  {{"job", job_name_},
                   {"partition", partition},
                   {"attempt", task.attempt}});
  obs::IncrCounter("s2v.phase1_duplicates");
  return session->Execute(self, "ROLLBACK").status();
}

Status S2VRelation::WriteTaskPartition(TaskContext& task, int partition,
                                       const std::vector<Row>& rows) {
  sim::Process& self = *task.process;
  // Tasks spread their connections across the Vertica nodes (the driver
  // looked all addresses up during setup, Section 3.2).
  int node = partition % db_->num_nodes();
  // Failover: a DOWN preferred node re-targets the ring successor, so a
  // save keeps going through a single Vertica node loss. A node killed
  // mid-phase surfaces as UNAVAILABLE from the statement instead; Spark
  // then retries the whole task, which reconnects here.
  FABRIC_ASSIGN_OR_RETURN(
      std::unique_ptr<Session> session,
      ConnectWithFailover(self, db_, node, &task.worker_host()));
  session->set_resource_pool(resource_pool_);

  // ---- Phase 1: stage the data + mark done, transactionally.
  Status staged = StageData(task, partition, rows, session.get());
  if (staged.code() == StatusCode::kNotFound) {
    // Overwrite promotion renames the staging table away, so a retry of
    // a task killed inside the promote/ack window finds nothing to COPY
    // into. The permanent job record settles what that means: if the
    // finished flag is durably TRUE the save already published and this
    // retry has nothing left to do; otherwise surface the error.
    FABRIC_RETURN_IF_ERROR(session->Execute(self, "ROLLBACK").status());
    FABRIC_ASSIGN_OR_RETURN(
        QueryResult final_row,
        session->Execute(self, StrCat("SELECT finished FROM ",
                                      kFinalStatusTable, " WHERE job = '",
                                      job_name_, "'")));
    bool finished = !final_row.rows.empty() &&
                    !final_row.rows[0][0].is_null() &&
                    final_row.rows[0][0].bool_value();
    if (finished) {
      obs::TraceEvent("s2v", "phase1.already_promoted",
                      {{"job", job_name_},
                       {"partition", partition},
                       {"attempt", task.attempt}});
      return session->Close(self);
    }
    return staged;
  }
  FABRIC_RETURN_IF_ERROR(staged);

  // ---- Phase 2: are all tasks done?
  FABRIC_ASSIGN_OR_RETURN(
      QueryResult remaining,
      session->Execute(self, StrCat("SELECT COUNT(*) FROM ", status_table_,
                                    " WHERE done = FALSE")));
  if (remaining.rows[0][0].int64_value() > 0) {
    obs::TraceEvent("s2v", "phase2.incomplete",
                    {{"job", job_name_},
                     {"partition", partition},
                     {"attempt", task.attempt},
                     {"remaining", remaining.rows[0][0].int64_value()}});
    return session->Close(self);
  }

  // ---- Phase 3: race to become the last committer.
  Status raced =
      session
          ->Execute(self, StrCat("UPDATE ", committer_table_,
                                 " SET task = ", partition,
                                 " WHERE task = -1"))
          .status();
  // Election observed at the durability point (see phase 1): affected==1
  // on a durable autocommit means this task's id is now in the committer
  // table, even if the ack never arrived.
  if (session->last_commit_epoch() != 0 &&
      session->last_update_affected() == 1) {
    obs::TraceEvent("s2v", "phase3.elected",
                    {{"job", job_name_},
                     {"partition", partition},
                     {"attempt", task.attempt}});
    obs::IncrCounter("s2v.phase3_elections");
  }
  FABRIC_RETURN_IF_ERROR(raced);

  // ---- Phase 4: did this task win?
  FABRIC_ASSIGN_OR_RETURN(
      QueryResult winner,
      session->Execute(self,
                       StrCat("SELECT task FROM ", committer_table_)));
  if (winner.rows.size() != 1 ||
      winner.rows[0][0].int64_value() != partition) {
    obs::TraceEvent("s2v", "phase4.loser",
                    {{"job", job_name_},
                     {"partition", partition},
                     {"attempt", task.attempt}});
    return session->Close(self);
  }
  obs::TraceEvent("s2v", "phase4.winner",
                  {{"job", job_name_},
                   {"partition", partition},
                   {"attempt", task.attempt}});

  // ---- Phase 5: verify tolerance, then promote staging into the target.
  FABRIC_ASSIGN_OR_RETURN(
      QueryResult totals,
      session->Execute(self,
                       StrCat("SELECT SUM(inserted) AS ins, SUM(failed) "
                              "AS rej FROM ",
                              status_table_)));
  double inserted = totals.rows[0][0].is_null()
                        ? 0
                        : totals.rows[0][0].float64_value();
  double failed = totals.rows[0][1].is_null()
                      ? 0
                      : totals.rows[0][1].float64_value();
  double failed_pct =
      inserted + failed > 0 ? failed / (inserted + failed) : 0.0;
  if (failed_pct > tolerance_) {
    obs::TraceEvent("s2v", "phase5.reject",
                    {{"job", job_name_},
                     {"partition", partition},
                     {"failed_pct", failed_pct},
                     {"tolerance", tolerance_}});
    obs::IncrCounter("s2v.phase5_rejects");
    // Record the failure and fail the save; the target is untouched.
    FABRIC_RETURN_IF_ERROR(
        session->Execute(self, StrCat("UPDATE ", kFinalStatusTable,
                                      " SET failed_pct = ", failed_pct,
                                      " WHERE job = '", job_name_, "'"))
            .status());
    FABRIC_RETURN_IF_ERROR(session->Close(self));
    return FailedPreconditionError(
        StrCat("S2V: rejected-row fraction ", failed_pct,
               " exceeds tolerance ", tolerance_));
  }

  if (mode_ == SaveMode::kAppend) {
    // Atomic: copy + conditional finished-flag under one transaction. A
    // speculative duplicate of the winner sees finished=TRUE, matches 0
    // rows and rolls its copy back.
    FABRIC_RETURN_IF_ERROR(session->Execute(self, "BEGIN").status());
    FABRIC_RETURN_IF_ERROR(
        session->Execute(self, StrCat("INSERT INTO ", target_, " SELECT "
                                      "* FROM ",
                                      staging_table_))
            .status());
    FABRIC_ASSIGN_OR_RETURN(
        QueryResult flag,
        session->Execute(self, StrCat("UPDATE ", kFinalStatusTable,
                                      " SET finished = TRUE, failed_pct "
                                      "= ",
                                      failed_pct, " WHERE job = '",
                                      job_name_,
                                      "' AND finished = FALSE")));
    if (flag.affected == 1) {
      Status committed = session->Execute(self, "COMMIT").status();
      // Durable-point tracing, as in phase 1: the promotion happened iff
      // the INSERT+flag transaction reached durability.
      if (session->last_commit_epoch() != 0) {
        obs::TraceEvent("s2v", "phase5.promote",
                        {{"job", job_name_},
                         {"partition", partition},
                         {"attempt", task.attempt},
                         {"mode", "append"},
                         {"failed_pct", failed_pct},
                         {"acked", committed.ok()}});
        obs::IncrCounter("s2v.phase5_promotions");
      }
      FABRIC_RETURN_IF_ERROR(committed);
    } else {
      FABRIC_RETURN_IF_ERROR(session->Execute(self, "ROLLBACK").status());
    }
    return session->Close(self);
  }

  // Overwrite (or ErrorIfExists, whose target absence was verified at
  // setup): atomically swap staging in. A concurrent duplicate's rename
  // fails with NOT_FOUND once the staging table is gone — meaning the
  // promotion already happened — and falls through to the (conditional,
  // hence idempotent) status update.
  Status renamed =
      session
          ->Execute(self, StrCat("ALTER TABLE ", staging_table_,
                                 " RENAME TO ", target_, " REPLACE"))
          .status();
  if (!renamed.ok() && renamed.code() != StatusCode::kNotFound) {
    return renamed;
  }
  Status flagged =
      session
          ->Execute(self, StrCat("UPDATE ", kFinalStatusTable,
                                 " SET finished = TRUE, failed_pct = ",
                                 failed_pct, " WHERE job = '", job_name_,
                                 "' AND finished = FALSE"))
          .status();
  // The conditional flag flip is the exactly-once promotion marker for
  // overwrite mode too: only one attempt ever moves finished FALSE->TRUE.
  if (session->last_commit_epoch() != 0 &&
      session->last_update_affected() == 1) {
    obs::TraceEvent("s2v", "phase5.promote",
                    {{"job", job_name_},
                     {"partition", partition},
                     {"attempt", task.attempt},
                     {"mode", "overwrite"},
                     {"failed_pct", failed_pct}});
    obs::IncrCounter("s2v.phase5_promotions");
  }
  FABRIC_RETURN_IF_ERROR(flagged);
  return session->Close(self);
}

Status S2VRelation::Finalize(sim::Process& driver, Status job_status) {
  FABRIC_ASSIGN_OR_RETURN(
      std::unique_ptr<Session> session,
      ConnectWithFailover(driver, db_, entry_node_,
                          &cluster_->driver_host()));
  session->set_resource_pool(resource_pool_);
  FABRIC_ASSIGN_OR_RETURN(
      QueryResult final_row,
      session->Execute(driver, StrCat("SELECT finished, failed_pct FROM ",
                                      kFinalStatusTable, " WHERE job = '",
                                      job_name_, "'")));
  bool finished = !final_row.rows.empty() &&
                  !final_row.rows[0][0].is_null() &&
                  final_row.rows[0][0].bool_value();

  // Tear down the temporary tables (the permanent job record stays).
  FABRIC_RETURN_IF_ERROR(
      session->Execute(driver, StrCat("DROP TABLE IF EXISTS ",
                                      status_table_))
          .status());
  FABRIC_RETURN_IF_ERROR(
      session->Execute(driver, StrCat("DROP TABLE IF EXISTS ",
                                      committer_table_))
          .status());
  FABRIC_RETURN_IF_ERROR(
      session->Execute(driver, StrCat("DROP TABLE IF EXISTS ",
                                      staging_table_))
          .status());
  FABRIC_RETURN_IF_ERROR(session->Close(driver));
  obs::TraceEvent("s2v", "save.finalize",
                  {{"job", job_name_},
                   {"finished", finished},
                   {"job_ok", job_status.ok()}});

  if (!job_status.ok()) return job_status;
  if (!finished) {
    return AbortedError(StrCat("S2V job '", job_name_,
                               "' did not reach finished state"));
  }
  return Status::OK();
}

}  // namespace fabric::connector
