#ifndef FABRIC_CONNECTOR_FAILOVER_H_
#define FABRIC_CONNECTOR_FAILOVER_H_

#include <memory>

#include "common/result.h"
#include "common/string_util.h"
#include "obs/trace.h"
#include "vertica/database.h"
#include "vertica/session.h"

namespace fabric::connector {

// Connects to `preferred`, falling back around the ring when that node is
// unavailable (DOWN or RECOVERING) — the connector-side half of k-safety:
// both V2S and S2V keep working through a single Vertica node loss by
// re-targeting their JDBC connections. Non-UNAVAILABLE errors (bad node
// id, MaxClientSessions, a killed caller) pass through untouched; a fully
// down cluster exhausts every node and returns the last UNAVAILABLE.
inline Result<std::unique_ptr<vertica::Session>> ConnectWithFailover(
    sim::Process& self, vertica::Database* db, int preferred,
    const net::Host* client) {
  Status last = Status::OK();
  for (int attempt = 0; attempt < db->num_nodes(); ++attempt) {
    int target = (preferred + attempt) % db->num_nodes();
    Result<std::unique_ptr<vertica::Session>> session =
        db->Connect(self, target, client);
    if (session.ok()) {
      if (attempt > 0) {
        obs::TraceEvent("connector", "connect.failover",
                        {{"preferred", preferred}, {"node", target}});
        obs::IncrCounter("connector.connect_failovers");
      }
      return session;
    }
    if (session.status().code() != StatusCode::kUnavailable) {
      return session.status();
    }
    last = session.status();
  }
  return last;
}

}  // namespace fabric::connector

#endif  // FABRIC_CONNECTOR_FAILOVER_H_
