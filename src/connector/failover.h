#ifndef FABRIC_CONNECTOR_FAILOVER_H_
#define FABRIC_CONNECTOR_FAILOVER_H_

#include <memory>

#include "common/result.h"
#include "common/string_util.h"
#include "obs/trace.h"
#include "vertica/database.h"
#include "vertica/session.h"

namespace fabric::connector {

// How many times a node-saturated connect (the typed MAX_CLIENT_SESSIONS
// rejection) is retried with exponential backoff before surfacing, and
// the initial backoff. A saturated node is a transient condition — the
// paper's parallel-partition loads routinely brush the session cap — so
// the connector behaves like a JDBC pool: back off and re-knock rather
// than failing the partition.
inline constexpr int kMaxSessionRetries = 6;
inline constexpr double kSessionRetryBackoff = 0.1;

// Connects to `preferred`, falling back around the ring when that node is
// unavailable (DOWN or RECOVERING) — the connector-side half of k-safety:
// both V2S and S2V keep working through a single Vertica node loss by
// re-targeting their JDBC connections. A node at MaxClientSessions is
// retried with exponential backoff (bounded; the typed error surfaces
// once retries exhaust). Other non-UNAVAILABLE errors (bad node id, a
// killed caller) pass through untouched; a fully down cluster exhausts
// every node and returns the last UNAVAILABLE.
inline Result<std::unique_ptr<vertica::Session>> ConnectWithFailover(
    sim::Process& self, vertica::Database* db, int preferred,
    const net::Host* client) {
  Status last = Status::OK();
  int session_retries = 0;
  for (int attempt = 0; attempt < db->num_nodes(); ++attempt) {
    int target = (preferred + attempt) % db->num_nodes();
    Result<std::unique_ptr<vertica::Session>> session =
        db->Connect(self, target, client);
    if (session.ok()) {
      if (attempt > 0) {
        obs::TraceEvent("connector", "connect.failover",
                        {{"preferred", preferred}, {"node", target}});
        obs::IncrCounter("connector.connect_failovers");
      }
      return session;
    }
    if (vertica::IsMaxClientSessionsError(session.status())) {
      if (session_retries >= kMaxSessionRetries) return session.status();
      double backoff = kSessionRetryBackoff * (1 << session_retries);
      ++session_retries;
      obs::TraceEvent("connector", "connect.session_backoff",
                      {{"node", target},
                       {"retry", session_retries},
                       {"backoff", backoff}});
      obs::IncrCounter("connector.session_backoffs");
      FABRIC_RETURN_IF_ERROR(self.Sleep(backoff));
      --attempt;  // re-knock on the same node after the backoff
      continue;
    }
    if (session.status().code() != StatusCode::kUnavailable) {
      return session.status();
    }
    last = session.status();
  }
  return last;
}

}  // namespace fabric::connector

#endif  // FABRIC_CONNECTOR_FAILOVER_H_
