#include "connector/default_source.h"

#include "common/string_util.h"
#include "connector/s2v.h"
#include "connector/v2s.h"

namespace fabric::connector {

Result<std::shared_ptr<spark::ScanRelation>>
VerticaDefaultSource::CreateScan(sim::Process& driver,
                                 const spark::SourceOptions& options) {
  FABRIC_ASSIGN_OR_RETURN(std::shared_ptr<V2SRelation> relation,
                          V2SRelation::Create(driver, db_, cluster_,
                                              options));
  return std::shared_ptr<spark::ScanRelation>(std::move(relation));
}

Result<std::shared_ptr<spark::WriteRelation>>
VerticaDefaultSource::CreateWrite(sim::Process& driver,
                                  const spark::SourceOptions& options,
                                  spark::SaveMode mode,
                                  const storage::Schema& schema) {
  std::string job_name =
      options.GetOr("jobname", StrCat("job", next_job_++));
  FABRIC_ASSIGN_OR_RETURN(
      std::shared_ptr<S2VRelation> relation,
      S2VRelation::Create(driver, db_, cluster_, options, mode, schema,
                          std::move(job_name)));
  return std::shared_ptr<spark::WriteRelation>(std::move(relation));
}

void RegisterVerticaSource(spark::SparkSession* session,
                           vertica::Database* db) {
  session->RegisterFormat(
      kVerticaSourceName,
      std::make_shared<VerticaDefaultSource>(db, session->cluster()));
}

}  // namespace fabric::connector
