#ifndef FABRIC_CONNECTOR_DEFAULT_SOURCE_H_
#define FABRIC_CONNECTOR_DEFAULT_SOURCE_H_

#include <memory>
#include <string>

#include "spark/dataframe.h"
#include "spark/datasource.h"
#include "vertica/database.h"

namespace fabric::connector {

// Format name users pass to df.read/df.write (Table 1).
inline constexpr const char* kVerticaSourceName =
    "com.vertica.spark.datasource.DefaultSource";

// The HPE Vertica Connector for Apache Spark: wires V2S into load() and
// S2V into save() through Spark's External Data Source API.
class VerticaDefaultSource : public spark::DataSourceProvider {
 public:
  VerticaDefaultSource(vertica::Database* db, spark::SparkCluster* cluster)
      : db_(db), cluster_(cluster) {}

  Result<std::shared_ptr<spark::ScanRelation>> CreateScan(
      sim::Process& driver, const spark::SourceOptions& options) override;

  Result<std::shared_ptr<spark::WriteRelation>> CreateWrite(
      sim::Process& driver, const spark::SourceOptions& options,
      spark::SaveMode mode, const storage::Schema& schema) override;

 private:
  vertica::Database* db_;
  spark::SparkCluster* cluster_;
  int64_t next_job_ = 1;  // unique S2V job names
};

// Registers the connector on a session under kVerticaSourceName.
void RegisterVerticaSource(spark::SparkSession* session,
                           vertica::Database* db);

}  // namespace fabric::connector

#endif  // FABRIC_CONNECTOR_DEFAULT_SOURCE_H_
