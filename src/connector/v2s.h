#ifndef FABRIC_CONNECTOR_V2S_H_
#define FABRIC_CONNECTOR_V2S_H_

#include <memory>
#include <string>
#include <vector>

#include "spark/datasource.h"
#include "vertica/catalog.h"
#include "vertica/database.h"

namespace fabric::connector {

// V2S: the Vertica-to-Spark half of the HPE Vertica Connector for Apache
// Spark (Section 3.1). Each Spark partition formulates a unique query for
// a non-overlapping slice of the hash ring, targets the Vertica node that
// owns that slice (eliminating intra-Vertica shuffling), reads at one
// common epoch (a consistent snapshot across all tasks and retries), and
// pushes projections, filters and COUNT down into Vertica.
//
// Options: table, host, user, password, numpartitions, at_epoch
// (optional override; default = the current epoch at load time),
// aggregate_pushdown ("false" disables grouped-aggregate pushdown; the
// DataFrame then aggregates through the Spark shuffle instead),
// resource_pool (workload-manager pool every connector session is
// admitted under; empty = the database's default pool).
class V2SRelation : public spark::ScanRelation {
 public:
  // Driver-side construction: resolves schema, segment layout and the
  // snapshot epoch from the system catalog.
  static Result<std::shared_ptr<V2SRelation>> Create(
      sim::Process& driver, vertica::Database* db,
      spark::SparkCluster* cluster, const spark::SourceOptions& options);

  const storage::Schema& schema() const override { return schema_; }
  int num_partitions() const override { return num_partitions_; }

  // A grouped aggregate may run inside Vertica only when each partition
  // (a disjoint slice of the segmentation hash ring) holds complete,
  // disjoint group sets: the grouping must cover every segmentation
  // column (or there must be a single partition).
  bool SupportsAggregatePushdown(
      const spark::AggregatePushDown& agg) const override;
  // LIMIT always pushes: each partition needs at most `limit` rows, and
  // the Vertica scan stops early once it has them.
  bool SupportsLimitPushdown() const override { return true; }

  Result<PartitionData> ReadPartition(spark::TaskContext& task,
                                      int partition,
                                      const spark::PushDown& push) override;

  // The SQL a given partition would issue (exposed for tests and docs).
  std::string PartitionQuery(int partition,
                             const spark::PushDown& push) const;

  // Node each partition connects to (tests verify locality).
  int PartitionTargetNode(int partition) const {
    return partition_nodes_[partition];
  }

  int64_t snapshot_epoch() const { return snapshot_epoch_; }

 private:
  V2SRelation() = default;

  // The partition-independent pieces of a partition query — the pushed
  // select list, GROUP BY, rendered filter conjuncts and LIMIT tail.
  // Built once per query (ReadPartition hoists it out of the failover
  // loop); only the ring-range bounds differ per partition.
  struct QueryShape {
    std::string select_list;
    std::string group_by;
    std::string filter_where;  // " AND <cond>" fragments
    int filter_conjuncts = 0;
    std::string limit_tail;
  };
  QueryShape BuildQueryShape(const spark::PushDown& push) const;
  std::string RenderPartitionQuery(int partition,
                                   const QueryShape& shape) const;

  vertica::Database* db_ = nullptr;
  spark::SparkCluster* cluster_ = nullptr;
  std::string table_;
  bool is_view_ = false;
  storage::Schema schema_;
  std::vector<std::string> segmentation_columns_;  // synthetic for views
  bool aggregate_pushdown_enabled_ = true;
  std::string resource_pool_;
  int num_partitions_ = 0;
  int64_t snapshot_epoch_ = 0;
  std::vector<vertica::HashRange> partition_ranges_;
  std::vector<int> partition_nodes_;
};

}  // namespace fabric::connector

#endif  // FABRIC_CONNECTOR_V2S_H_
