#ifndef FABRIC_CONNECTOR_S2V_H_
#define FABRIC_CONNECTOR_S2V_H_

#include <memory>
#include <string>
#include <vector>

#include "spark/datasource.h"
#include "vertica/database.h"

namespace fabric::connector {

// S2V: the Spark-to-Vertica half of the connector (Section 3.2). A save
// is one Spark job whose stateless tasks coordinate exclusively through
// four Vertica tables, giving exactly-once semantics under task failures,
// restarts, speculative duplicates and total Spark failure:
//
//   staging table       same schema as the target; all task data lands
//                       here first (temporary)
//   task status table   one row per task: inserted/failed counts + done
//                       flag, updated under the same transaction as the
//                       task's COPY (temporary)
//   last committer      single row; a conditional UPDATE elects exactly
//                       one finishing task (temporary)
//   final status table  permanent record (job name, failed-row
//                       percentage, finished flag) that survives total
//                       Spark failure
//
// Phases per task (Figure 5):
//   1  COPY partition data into staging + conditionally mark done, in one
//      transaction (abort if a duplicate already marked it)
//   2  if any task is not done, terminate
//   3  race to write the last-committer row (leader election)
//   4  read it back; losers terminate
//   5  the leader verifies the rejected-row tolerance and atomically
//      promotes staging into the target (Overwrite: atomic rename with
//      replace; Append: INSERT...SELECT + conditional finished update in
//      one transaction)
//
// Options: table, host, user, password, numpartitions,
// failedrowstolerance (fraction, default 0), batchrows, resource_pool
// (workload-manager pool every save session is admitted under; empty =
// the database's default pool).
class S2VRelation : public spark::WriteRelation {
 public:
  static Result<std::shared_ptr<S2VRelation>> Create(
      sim::Process& driver, vertica::Database* db,
      spark::SparkCluster* cluster, const spark::SourceOptions& options,
      spark::SaveMode mode, const storage::Schema& schema,
      std::string job_name);

  Status Setup(sim::Process& driver, int num_partitions) override;
  // Pre-hash optimization (the paper's Section 5 future work): when the
  // `prehash` option is set, rows are re-split so each task holds only
  // rows of the Vertica segment owned by the node the task connects to,
  // eliminating intra-Vertica routing during the save.
  std::function<int(const storage::Row&)> Partitioner(
      int num_partitions) override;
  Status WriteTaskPartition(spark::TaskContext& task, int partition,
                            const std::vector<storage::Row>& rows) override;
  Status Finalize(sim::Process& driver, Status job_status) override;

  // Table names (tests & docs).
  const std::string& staging_table() const { return staging_table_; }
  const std::string& status_table() const { return status_table_; }
  const std::string& committer_table() const { return committer_table_; }
  static constexpr const char* kFinalStatusTable = "s2v_job_status";

  const std::string& job_name() const { return job_name_; }

 private:
  S2VRelation() = default;

  // Phase 1 as one transaction; returns OK whether or not this attempt
  // was the one that staged the data (duplicates abort quietly).
  Status StageData(spark::TaskContext& task, int partition,
                   const std::vector<storage::Row>& rows,
                   vertica::Session* session);

  vertica::Database* db_ = nullptr;
  spark::SparkCluster* cluster_ = nullptr;
  std::string target_;
  spark::SaveMode mode_ = spark::SaveMode::kErrorIfExists;
  storage::Schema schema_;
  std::string job_name_;
  std::string staging_table_;
  std::string status_table_;
  std::string committer_table_;
  double tolerance_ = 0.0;
  bool prehash_ = false;
  std::string resource_pool_;
  int batch_rows_ = 5000;
  int num_partitions_ = 0;
  int entry_node_ = 0;
};

}  // namespace fabric::connector

#endif  // FABRIC_CONNECTOR_S2V_H_
