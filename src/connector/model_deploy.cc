#include "connector/model_deploy.h"

#include "common/string_util.h"
#include "vertica/session.h"

namespace fabric::connector {

using storage::Value;
using vertica::QueryResult;

namespace {

std::string DfsPath(const std::string& name) {
  return StrCat("/pmml/", name, ".xml");
}

}  // namespace

Status DeployPmmlModel(sim::Process& self, vertica::Database* db,
                       const net::Host* client,
                       const pmml::PmmlModel& model) {
  if (model.name.empty()) {
    return InvalidArgumentError("model needs a name");
  }
  std::string xml = model.ToXml();
  FABRIC_ASSIGN_OR_RETURN(std::unique_ptr<vertica::Session> session,
                          db->Connect(self, 0, client));
  // Ship the document; PMML models are small, so this is cheap.
  if (client != nullptr) {
    FABRIC_RETURN_IF_ERROR(db->network()->Transfer(
        self, {client->ext_egress, db->node_host(0).ext_ingress},
        static_cast<double>(xml.size())));
  }
  FABRIC_RETURN_IF_ERROR(
      session->Execute(self, StrCat("CREATE TABLE IF NOT EXISTS ",
                                    kModelMetadataTable,
                                    " (name VARCHAR, kind VARCHAR, "
                                    "size INTEGER, features INTEGER) "
                                    "UNSEGMENTED ALL NODES"))
          .status());
  // Redeploying replaces the metadata row and the DFS blob.
  FABRIC_RETURN_IF_ERROR(
      session->Execute(self, StrCat("DELETE FROM ", kModelMetadataTable,
                                    " WHERE name = '", model.name, "'"))
          .status());
  FABRIC_RETURN_IF_ERROR(
      session->Execute(
                 self,
                 StrCat("INSERT INTO ", kModelMetadataTable, " VALUES ('",
                        model.name, "', '", PmmlKindName(model.kind),
                        "', ", xml.size(), ", ",
                        model.feature_names.size(), ")"))
          .status());
  db->MarkScaleExempt(kModelMetadataTable);
  FABRIC_RETURN_IF_ERROR(db->dfs().Put(DfsPath(model.name), xml));
  return session->Close(self);
}

Result<pmml::PmmlModel> GetPmml(sim::Process& self, vertica::Database* db,
                                const std::string& name) {
  FABRIC_RETURN_IF_ERROR(self.CheckAlive());
  FABRIC_ASSIGN_OR_RETURN(std::string xml, db->dfs().Get(DfsPath(name)));
  return pmml::PmmlModel::FromXml(xml);
}

Result<std::vector<std::string>> ListPmmlModels(sim::Process& self,
                                                vertica::Database* db) {
  FABRIC_ASSIGN_OR_RETURN(std::unique_ptr<vertica::Session> session,
                          db->Connect(self, 0, nullptr));
  if (!db->catalog().HasTable(kModelMetadataTable)) {
    FABRIC_RETURN_IF_ERROR(session->Close(self));
    return std::vector<std::string>{};
  }
  FABRIC_ASSIGN_OR_RETURN(
      QueryResult result,
      session->Execute(self, StrCat("SELECT name FROM ",
                                    kModelMetadataTable,
                                    " ORDER BY name")));
  FABRIC_RETURN_IF_ERROR(session->Close(self));
  std::vector<std::string> names;
  for (const auto& row : result.rows) {
    names.push_back(row[0].varchar_value());
  }
  return names;
}

void RegisterPmmlPredict(vertica::Database* db) {
  db->RegisterScalarFunction(
      "PMMLPredict",
      [db](const std::vector<Value>& args,
           const std::map<std::string, Value>& parameters)
          -> Result<Value> {
        auto it = parameters.find("model_name");
        if (it == parameters.end() || it->second.is_null()) {
          return InvalidArgumentError(
              "PMMLPredict needs USING PARAMETERS model_name='...'");
        }
        const std::string& name = it->second.varchar_value();
        FABRIC_ASSIGN_OR_RETURN(std::string xml,
                                db->dfs().Get(
                                    StrCat("/pmml/", name, ".xml")));
        FABRIC_ASSIGN_OR_RETURN(pmml::PmmlModel model,
                                pmml::PmmlModel::FromXml(xml));
        std::vector<double> features;
        features.reserve(args.size());
        for (const Value& arg : args) {
          if (arg.is_null()) return Value::Null();  // NULL in, NULL out
          FABRIC_ASSIGN_OR_RETURN(double v, arg.AsDouble());
          features.push_back(v);
        }
        FABRIC_ASSIGN_OR_RETURN(double score, model.Evaluate(features));
        return Value::Float64(score);
      });
}

}  // namespace fabric::connector
