#ifndef FABRIC_CONNECTOR_MODEL_DEPLOY_H_
#define FABRIC_CONNECTOR_MODEL_DEPLOY_H_

#include <string>
#include <vector>

#include "net/host.h"
#include "pmml/model.h"
#include "vertica/database.h"

namespace fabric::connector {

// MD: model deployment from Spark to Vertica (Section 3.3). PMML
// documents are stored in Vertica's internal DFS (model shapes vary too
// much for a generic table schema); their metadata lands in the
// `pmml_models` table; and the PMMLPredict scalar UDx evaluates a stored
// model over table columns from SQL:
//
//   SELECT PMMLPredict(sepal_length, ..., petal_width
//                      USING PARAMETERS model_name='regression')
//   FROM IrisTable
//
// Works for any PMML producer (Spark MLlib here; SAS / Distributed R in
// the paper's framing).

inline constexpr const char* kModelMetadataTable = "pmml_models";

// Ships the document to a node (network cost from `client`), stores it in
// the DFS and records metadata. Overwrites an existing model of the same
// name.
Status DeployPmmlModel(sim::Process& self, vertica::Database* db,
                       const net::Host* client,
                       const pmml::PmmlModel& model);

// Reads a deployed model back from the DFS.
Result<pmml::PmmlModel> GetPmml(sim::Process& self, vertica::Database* db,
                                const std::string& name);

// Deployed model names (from the metadata table).
Result<std::vector<std::string>> ListPmmlModels(sim::Process& self,
                                                vertica::Database* db);

// Registers the generic PMMLPredict evaluator UDx on the database. Call
// once per database; deployments after registration are picked up
// automatically (the UDx resolves models by name at call time).
void RegisterPmmlPredict(vertica::Database* db);

}  // namespace fabric::connector

#endif  // FABRIC_CONNECTOR_MODEL_DEPLOY_H_
