#include "connector/avro.h"

#include "common/bytes.h"
#include "common/logging.h"

namespace fabric::connector {

using storage::DataType;
using storage::Row;
using storage::Schema;
using storage::Value;

std::string AvroEncodeBatch(const Schema& schema,
                            const std::vector<Row>& rows) {
  ByteWriter writer;
  writer.PutU32(static_cast<uint32_t>(schema.num_columns()));
  writer.PutU32(static_cast<uint32_t>(rows.size()));
  for (const Row& row : rows) {
    // Rows that do not match the schema (wrong arity or field type) are
    // encoded as corrupt records; the COPY side rejects them, feeding the
    // S2V rejected-row tolerance accounting.
    if (!ValidateRow(schema, row).ok()) {
      writer.PutU8(0xFF);
      continue;
    }
    writer.PutU8(0x01);
    for (int c = 0; c < schema.num_columns(); ++c) {
      const Value& v = row[c];
      if (v.is_null()) {
        writer.PutU8(0);
        continue;
      }
      writer.PutU8(1);
      switch (schema.column(c).type) {
        case DataType::kBool:
          writer.PutU8(v.bool_value() ? 1 : 0);
          break;
        case DataType::kInt64:
          writer.PutI64(v.int64_value());
          break;
        case DataType::kFloat64:
          // Widen ints loaded into float columns.
          writer.PutDouble(v.type() == DataType::kInt64
                               ? static_cast<double>(v.int64_value())
                               : v.float64_value());
          break;
        case DataType::kVarchar:
          writer.PutString(v.varchar_value());
          break;
      }
    }
  }
  return writer.Take();
}

Result<std::vector<Row>> AvroDecodeBatch(const Schema& schema,
                                         const std::string& data) {
  ByteReader reader(data);
  FABRIC_ASSIGN_OR_RETURN(uint32_t columns, reader.GetU32());
  if (static_cast<int>(columns) != schema.num_columns()) {
    return InvalidArgumentError("Avro batch schema mismatch");
  }
  FABRIC_ASSIGN_OR_RETURN(uint32_t count, reader.GetU32());
  std::vector<Row> rows;
  rows.reserve(count);
  for (uint32_t r = 0; r < count; ++r) {
    FABRIC_ASSIGN_OR_RETURN(uint8_t row_flag, reader.GetU8());
    if (row_flag == 0xFF) {
      // Corrupt record: materialize as an empty row so the loader's
      // validation rejects it.
      rows.push_back(Row{});
      continue;
    }
    if (row_flag != 0x01) {
      return InvalidArgumentError("Avro batch has bad row flag");
    }
    Row row;
    row.reserve(columns);
    for (uint32_t c = 0; c < columns; ++c) {
      FABRIC_ASSIGN_OR_RETURN(uint8_t present, reader.GetU8());
      if (present == 0) {
        row.push_back(Value::Null());
        continue;
      }
      switch (schema.column(static_cast<int>(c)).type) {
        case DataType::kBool: {
          FABRIC_ASSIGN_OR_RETURN(uint8_t b, reader.GetU8());
          row.push_back(Value::Bool(b != 0));
          break;
        }
        case DataType::kInt64: {
          FABRIC_ASSIGN_OR_RETURN(int64_t v, reader.GetI64());
          row.push_back(Value::Int64(v));
          break;
        }
        case DataType::kFloat64: {
          FABRIC_ASSIGN_OR_RETURN(double v, reader.GetDouble());
          row.push_back(Value::Float64(v));
          break;
        }
        case DataType::kVarchar: {
          FABRIC_ASSIGN_OR_RETURN(std::string v, reader.GetString());
          row.push_back(Value::Varchar(std::move(v)));
          break;
        }
      }
    }
    rows.push_back(std::move(row));
  }
  if (!reader.AtEnd()) {
    return InvalidArgumentError("Avro batch has trailing bytes");
  }
  return rows;
}

}  // namespace fabric::connector
