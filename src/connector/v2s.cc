#include "connector/v2s.h"

#include <algorithm>

#include "common/logging.h"
#include "common/string_util.h"
#include "connector/failover.h"
#include "obs/trace.h"
#include "storage/profile.h"
#include "vertica/session.h"
#include "vertica/sql_eval.h"

namespace fabric::connector {

using spark::PushDown;
using spark::SourceOptions;
using spark::TaskContext;
using storage::Row;
using storage::Schema;
using vertica::HashRange;
using vertica::QueryResult;

namespace {

// Unsigned overlap width between a partition range and a node range.
unsigned __int128 OverlapWidth(const HashRange& a, const HashRange& b) {
  constexpr unsigned __int128 kEnd = (static_cast<unsigned __int128>(1))
                                     << 64;
  unsigned __int128 a_lo = a.lower, a_hi = a.upper == 0 ? kEnd : a.upper;
  unsigned __int128 b_lo = b.lower, b_hi = b.upper == 0 ? kEnd : b.upper;
  unsigned __int128 lo = std::max(a_lo, b_lo);
  unsigned __int128 hi = std::min(a_hi, b_hi);
  return lo < hi ? hi - lo : 0;
}

}  // namespace

Result<std::shared_ptr<V2SRelation>> V2SRelation::Create(
    sim::Process& driver, vertica::Database* db,
    spark::SparkCluster* cluster, const SourceOptions& options) {
  auto relation = std::shared_ptr<V2SRelation>(new V2SRelation());
  relation->db_ = db;
  relation->cluster_ = cluster;
  FABRIC_ASSIGN_OR_RETURN(relation->table_, options.Get("table"));
  relation->aggregate_pushdown_enabled_ = !EqualsIgnoreCase(
      options.GetOr("aggregate_pushdown", "true"), "false");
  relation->resource_pool_ = options.GetOr("resource_pool", "");
  relation->num_partitions_ = static_cast<int>(
      options.GetIntOr("numpartitions", 4 * db->num_nodes()));
  if (relation->num_partitions_ <= 0) {
    return InvalidArgumentError("numpartitions must be positive");
  }

  // Driver-side catalog lookups over one short-lived session.
  int entry_node = 0;
  if (options.Has("host")) {
    FABRIC_ASSIGN_OR_RETURN(std::string host, options.Get("host"));
    FABRIC_ASSIGN_OR_RETURN(entry_node, db->ResolveNode(host));
  }
  FABRIC_ASSIGN_OR_RETURN(
      std::unique_ptr<vertica::Session> session,
      ConnectWithFailover(driver, db, entry_node,
                          &cluster->driver_host()));
  session->set_resource_pool(relation->resource_pool_);

  // One snapshot epoch for every partition query: the heart of V2S's
  // consistent parallel load (Section 3.1.2).
  if (options.Has("at_epoch")) {
    FABRIC_ASSIGN_OR_RETURN(relation->snapshot_epoch_,
                            options.GetInt("at_epoch"));
  } else {
    FABRIC_ASSIGN_OR_RETURN(
        QueryResult epochs,
        session->Execute(driver,
                         "SELECT current_epoch FROM v_catalog.epochs"));
    relation->snapshot_epoch_ = epochs.rows[0][0].int64_value();
  }

  relation->is_view_ = db->catalog().HasView(relation->table_);
  if (relation->is_view_) {
    // Views: schema via a zero-row probe; parallelism via synthetic hash
    // ranges over all output columns (Section 3.1.1).
    FABRIC_ASSIGN_OR_RETURN(
        QueryResult probe,
        session->Execute(driver, StrCat("SELECT * FROM ", relation->table_,
                                        " LIMIT 0 AT EPOCH ",
                                        relation->snapshot_epoch_)));
    relation->schema_ = probe.schema;
    for (int c = 0; c < relation->schema_.num_columns(); ++c) {
      relation->segmentation_columns_.push_back(
          relation->schema_.column(c).name);
    }
    relation->partition_ranges_ =
        vertica::EvenRingPartition(relation->num_partitions_);
    for (int p = 0; p < relation->num_partitions_; ++p) {
      relation->partition_nodes_.push_back(p % db->num_nodes());
    }
    FABRIC_RETURN_IF_ERROR(session->Close(driver));
    return relation;
  }

  FABRIC_ASSIGN_OR_RETURN(const vertica::TableDef* def,
                          db->catalog().GetTable(relation->table_));
  relation->schema_ = def->schema;

  // Segment layout from the system catalog (the connector's only source
  // of truth about data placement).
  FABRIC_ASSIGN_OR_RETURN(
      QueryResult segments,
      session->Execute(
          driver, StrCat("SELECT node_id, segment_lower, segment_upper "
                         "FROM v_catalog.segments WHERE table_name = '",
                         relation->table_, "' ORDER BY node_id")));
  std::vector<HashRange> node_ranges;
  for (const Row& row : segments.rows) {
    HashRange range;
    range.lower = vertica::sql::SignedToRingHash(row[1].int64_value());
    range.upper = row[2].is_null() ? 0
                                   : vertica::sql::SignedToRingHash(
                                         row[2].int64_value());
    node_ranges.push_back(range);
  }

  if (node_ranges.empty()) {
    // Unsegmented (replicated) table: synthetic ranges over all columns.
    for (int c = 0; c < relation->schema_.num_columns(); ++c) {
      relation->segmentation_columns_.push_back(
          relation->schema_.column(c).name);
    }
    relation->partition_ranges_ =
        vertica::EvenRingPartition(relation->num_partitions_);
    for (int p = 0; p < relation->num_partitions_; ++p) {
      relation->partition_nodes_.push_back(p % db->num_nodes());
    }
    FABRIC_RETURN_IF_ERROR(session->Close(driver));
    return relation;
  }

  for (int c : def->segmentation.columns) {
    relation->segmentation_columns_.push_back(def->schema.column(c).name);
  }
  relation->partition_ranges_ =
      vertica::EvenRingPartition(relation->num_partitions_);
  // Each partition connects to the node owning (the largest share of)
  // its slice of the ring; with partitions a multiple of nodes, every
  // slice is wholly local (Figure 4). The `locality=false` option is an
  // ablation switch that deliberately targets the wrong node, forcing
  // the intra-Vertica shuffling the design eliminates.
  bool locality = !EqualsIgnoreCase(options.GetOr("locality", "true"),
                                    "false");
  for (int p = 0; p < relation->num_partitions_; ++p) {
    int best_node = 0;
    unsigned __int128 best_overlap = 0;
    for (size_t n = 0; n < node_ranges.size(); ++n) {
      unsigned __int128 overlap =
          OverlapWidth(relation->partition_ranges_[p], node_ranges[n]);
      if (overlap > best_overlap) {
        best_overlap = overlap;
        best_node = static_cast<int>(n);
      }
    }
    if (!locality) {
      best_node = (best_node + 1) % db->num_nodes();
    }
    relation->partition_nodes_.push_back(best_node);
  }
  FABRIC_RETURN_IF_ERROR(session->Close(driver));
  return relation;
}

bool V2SRelation::SupportsAggregatePushdown(
    const spark::AggregatePushDown& agg) const {
  if (!aggregate_pushdown_enabled_) return false;
  // Soundness: the per-partition GROUP BY results concatenate without a
  // merge only when no group can straddle two partitions. Partitions are
  // disjoint slices of HASH(segmentation columns), so it suffices that
  // the grouping determines the segmentation hash — i.e. covers every
  // segmentation column — or that there is only one partition.
  if (num_partitions_ > 1) {
    for (const std::string& seg : segmentation_columns_) {
      bool covered = false;
      for (const std::string& g : agg.group_columns) {
        if (EqualsIgnoreCase(g, seg)) {
          covered = true;
          break;
        }
      }
      if (!covered) return false;
    }
  }
  for (const std::string& g : agg.group_columns) {
    if (!schema_.IndexOf(g).ok()) return false;
  }
  for (const spark::AggregateCall& call : agg.calls) {
    if (!call.column.empty() && !schema_.IndexOf(call.column).ok()) {
      return false;
    }
  }
  return true;
}

V2SRelation::QueryShape V2SRelation::BuildQueryShape(
    const PushDown& push) const {
  QueryShape shape;
  if (push.aggregate.has_value()) {
    // The whole GROUP BY runs inside Vertica; Spark receives finished
    // group rows (keys first, then one column per aggregate call).
    std::vector<std::string> items = push.aggregate->group_columns;
    for (const spark::AggregateCall& call : push.aggregate->calls) {
      items.push_back(call.ToSqlExpr());
    }
    shape.select_list = Join(items, ", ");
    if (!push.aggregate->group_columns.empty()) {
      shape.group_by = StrCat(" GROUP BY ",
                              Join(push.aggregate->group_columns, ", "));
    }
  } else if (push.count_only) {
    shape.select_list = "COUNT(*)";
  } else if (push.required_columns.empty()) {
    shape.select_list = "*";
  } else {
    shape.select_list = Join(push.required_columns, ", ");
  }
  for (const spark::ColumnPredicate& filter : push.filters) {
    shape.filter_where += StrCat(" AND ", filter.ToSqlCondition());
    ++shape.filter_conjuncts;
  }
  // LIMIT renders only for row scans: `SELECT COUNT(*) ... LIMIT 0`
  // would return zero rows and break the count read, and the driver
  // already applies the global cap, so exactness is preserved without it.
  if (push.limit >= 0 && !push.count_only && !push.aggregate.has_value()) {
    shape.limit_tail = StrCat(" LIMIT ", push.limit);
  }
  return shape;
}

std::string V2SRelation::RenderPartitionQuery(int partition,
                                              const QueryShape& shape) const {
  // Every conjunct emitted here — the HASH(...) ring-range bounds and the
  // Spark column filters (column <op> literal) — is a shape the server's
  // analyzer compiles into predicate kernels (CompileScanPredicate), so a
  // V2S partition query runs entirely on encoded columns with no
  // interpreter residual. The vacuous `>= min` lower bound is emitted
  // anyway: the per-row HASH evaluation cost it charges is part of the
  // Section 4.7.2 calibration.
  const HashRange& range = partition_ranges_[partition];
  std::string hash_call =
      StrCat("HASH(", Join(segmentation_columns_, ", "), ")");
  std::string where =
      StrCat(hash_call, " >= ",
             vertica::sql::RingHashToSigned(range.lower));
  int pushed_conjuncts = 1;
  if (range.upper != 0) {
    where += StrCat(" AND ", hash_call, " < ",
                    vertica::sql::RingHashToSigned(range.upper));
    ++pushed_conjuncts;
  }
  where += shape.filter_where;
  obs::IncrCounter(
      "v2s.pushdown_conjuncts",
      static_cast<double>(pushed_conjuncts + shape.filter_conjuncts));
  return StrCat("SELECT ", shape.select_list, " FROM ", table_, " WHERE ",
                where, shape.group_by, shape.limit_tail, " AT EPOCH ",
                snapshot_epoch_);
}

std::string V2SRelation::PartitionQuery(int partition,
                                        const PushDown& push) const {
  return RenderPartitionQuery(partition, BuildQueryShape(push));
}

Result<spark::ScanRelation::PartitionData> V2SRelation::ReadPartition(
    TaskContext& task, int partition, const PushDown& push) {
  if (partition < 0 || partition >= num_partitions_) {
    return InvalidArgumentError("bad partition index");
  }
  // The pushed query is built once per read: the partition-independent
  // shape (select list, filter conjuncts, LIMIT tail) compiles first,
  // then the ring-range bounds render this partition's SQL. The string
  // is reused verbatim across failover retries below — retries used to
  // rebuild it (and re-count the pushed conjuncts) on every attempt.
  const std::string sql =
      RenderPartitionQuery(partition, BuildQueryShape(push));
  // Failover loop: the partition query is idempotent (same SELECT at the
  // same snapshot epoch), so on a node death — before, during, or after
  // the query ran — the task re-targets the ring successor and re-issues
  // it. The result is byte-identical wherever it is served from: every
  // live copy answers AT EPOCH with the same rows.
  int target = partition_nodes_[partition];
  Status last_unavailable = Status::OK();
  int session_retries = 0;
  for (int tries = 0; tries <= db_->num_nodes(); ++tries) {
    // The span's begin attrs record what was pushed down; the end attrs
    // record what actually crossed the wire — the pair is the evidence
    // the pushdown tests assert on.
    uint64_t span = obs::TraceBegin(
        "v2s", "scan",
        {{"table", table_},
         {"partition", partition},
         {"node", target},
         {"attempt", task.attempt},
         {"epoch", snapshot_epoch_},
         {"count_only", push.count_only},
         {"aggregate", push.aggregate.has_value()},
         {"limit", push.limit},
         {"columns", static_cast<int64_t>(push.required_columns.size())},
         {"filters", static_cast<int64_t>(push.filters.size())}});
    auto fail = [&](const Status& status) {
      obs::TraceEnd(span, "v2s", "scan",
                    {{"partition", partition}, {"ok", false}});
      return status;
    };
    // UNAVAILABLE means the target node (or the connection to it) died;
    // anything else is a real error the task should surface.
    auto retryable = [](const Status& status) {
      return status.code() == StatusCode::kUnavailable;
    };
    auto reroute = [&](const Status& status) {
      obs::TraceEnd(span, "v2s", "scan",
                    {{"partition", partition}, {"ok", false}});
      obs::TraceEvent("v2s", "scan.failover",
                      {{"partition", partition}, {"from_node", target}});
      obs::IncrCounter("v2s.scan_failovers");
      last_unavailable = status;
      target = (target + 1) % db_->num_nodes();
    };

    auto connected = db_->Connect(*task.process, target,
                                  &task.worker_host());
    if (!connected.ok()) {
      if (retryable(connected.status())) {
        reroute(connected.status());
        continue;
      }
      // A node at MaxClientSessions is saturated, not broken: back off
      // and re-knock on the same node (bounded), mirroring
      // ConnectWithFailover's session-pool behavior.
      if (vertica::IsMaxClientSessionsError(connected.status()) &&
          session_retries < kMaxSessionRetries) {
        double backoff = kSessionRetryBackoff * (1 << session_retries);
        ++session_retries;
        obs::TraceEnd(span, "v2s", "scan",
                      {{"partition", partition}, {"ok", false}});
        obs::TraceEvent("v2s", "scan.session_backoff",
                        {{"partition", partition},
                         {"node", target},
                         {"retry", session_retries},
                         {"backoff", backoff}});
        obs::IncrCounter("v2s.session_backoffs");
        FABRIC_RETURN_IF_ERROR(task.process->Sleep(backoff));
        --tries;  // the backoff does not consume a failover try
        continue;
      }
      return fail(connected.status());
    }
    std::unique_ptr<vertica::Session> session =
        std::move(connected).value();
    session->set_resource_pool(resource_pool_);
    auto executed = session->Execute(*task.process, sql);
    if (!executed.ok()) {
      if (retryable(executed.status())) {
        reroute(executed.status());
        continue;
      }
      return fail(executed.status());
    }
    QueryResult result = std::move(executed).value();
    Status closed = session->Close(*task.process);
    if (!closed.ok()) return fail(closed);

    int64_t rows_returned = push.count_only
                                ? 1
                                : static_cast<int64_t>(result.rows.size());
    obs::TraceEnd(span, "v2s", "scan",
                  {{"partition", partition},
                   {"rows", rows_returned},
                   {"ok", true}});
    obs::IncrCounter("v2s.partitions_scanned");
    obs::IncrCounter("v2s.rows_returned",
                     static_cast<double>(rows_returned));
    if (push.aggregate.has_value()) obs::IncrCounter("v2s.agg_pushdowns");
    if (push.limit >= 0 && !push.count_only &&
        !push.aggregate.has_value()) {
      obs::IncrCounter("v2s.limit_pushdowns");
    }

    PartitionData data;
    if (push.count_only) {
      data.count = result.rows[0][0].int64_value();
      return data;
    }
    // Spark-side deserialization cost for the received rows.
    const CostModel& cost = cluster_->cost();
    FABRIC_RETURN_IF_ERROR(task.Compute(result.rows.size() *
                                        cost.spark_row_process_cpu *
                                        cost.data_scale));
    data.count = static_cast<int64_t>(result.rows.size());
    data.rows = std::move(result.rows);
    return data;
  }
  // Every node tried and unavailable: the cluster is down.
  return last_unavailable;
}

}  // namespace fabric::connector
